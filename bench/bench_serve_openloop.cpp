/**
 * @file
 * Open-loop serving benchmark for the event-driven core: raw
 * connections keep a fixed window of pipelined batch requests in
 * flight against an in-process server, so throughput is set by the
 * reactor's service rate (incremental decode + one GEMM per batch)
 * rather than by per-request round-trip waits.
 *
 * The closed-loop reference is the synchronous scalar client the
 * thread-per-connection server was built around: one predict, wait,
 * next. The acceptance gate asserts the open-loop pipeline sustains
 * at least 5x the closed-loop prediction rate with request p99 under
 * the 50 ms SLO, and exits nonzero otherwise. Results are appended
 * to BENCH_search.json for the CI regression gate.
 */
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace hwsw;

namespace {

constexpr std::size_t kBatch = 64;   ///< rows per pipelined request
constexpr std::size_t kWindow = 32;  ///< requests in flight per conn
constexpr int kConnections = 2;
constexpr double kDuration = 1.5;    ///< seconds per phase
constexpr double kP99SloMs = 50.0;   ///< open-loop request p99 SLO
constexpr double kSpeedupFloor = 5.0;

core::HwSwModel
quickModel()
{
    core::Dataset ds;
    Rng rng(1);
    for (const char *app : {"a", "b"}) {
        for (int i = 0; i < 60; ++i) {
            core::ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[7] = std::exp(rng.nextGaussian() + 4.0);
            r.vars[core::kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 2.0 * r.vars[6] +
                     4.0 / r.vars[core::kNumSw];
            ds.add(r);
        }
    }
    core::ModelSpec s;
    s.genes[6] = 2;
    s.genes[7] = 4;
    s.genes[core::kNumSw] = 3;
    s.interactions = {{6, static_cast<std::uint16_t>(core::kNumSw)}};
    s.normalize();
    core::HwSwModel model;
    model.fit(s, ds);
    return model;
}

serve::FeatureVector
randomRow(Rng &rng)
{
    serve::FeatureVector row{};
    row[6] = rng.nextUniform(0.1, 0.6);
    row[7] = std::exp(rng.nextGaussian() + 4.0);
    row[core::kNumSw] = 1 << rng.nextInt(4);
    return row;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Closed-loop scalar reference: one predict outstanding per client. */
double
runClosedLoop(serve::Server &server, double seconds)
{
    std::atomic<std::uint64_t> predictions{0};
    std::atomic<bool> go{true};
    std::vector<std::thread> clients;
    for (int t = 0; t < kConnections; ++t) {
        clients.emplace_back([&, t] {
            serve::Client c("127.0.0.1", server.port());
            Rng rng(50 + t);
            const serve::FeatureVector row = randomRow(rng);
            while (go.load(std::memory_order_relaxed)) {
                if (c.predict("default", row).ok)
                    predictions.fetch_add(1,
                                          std::memory_order_relaxed);
            }
            c.quit();
        });
    }
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds));
    go.store(false, std::memory_order_relaxed);
    for (auto &t : clients)
        t.join();
    return static_cast<double>(predictions.load()) /
        secondsSince(start);
}

struct OpenLoopResult
{
    std::uint64_t responses = 0;
    std::uint64_t bad = 0;          ///< non-"ok" or short responses
    std::vector<double> latency;    ///< per-request seconds
};

/**
 * One open-loop connection: keep kWindow pipelined batch requests in
 * flight, record each request's send-to-response latency (responses
 * arrive in order, so a FIFO of send stamps is exact).
 */
OpenLoopResult
runOpenLoopConn(std::uint16_t port, int seed,
                const core::HwSwModel &model, double seconds)
{
    OpenLoopResult res;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return res;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return res;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Rng rng(seed);
    std::vector<serve::FeatureVector> rows;
    for (std::size_t i = 0; i < kBatch; ++i)
        rows.push_back(randomRow(rng));
    const std::string request =
        serve::makeBatchRequest("default", rows);
    std::vector<double> expected;
    for (const auto &row : rows) {
        core::ProfileRecord rec;
        rec.vars = row;
        rec.perf = 1.0;
        expected.push_back(model.predict(rec));
    }

    std::deque<std::chrono::steady_clock::time_point> inflight;
    auto sendOne = [&] {
        if (!serve::writeFrame(fd, request))
            return false;
        inflight.push_back(std::chrono::steady_clock::now());
        return true;
    };

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kWindow; ++i)
        if (!sendOne())
            break;

    std::string response;
    bool verified = false;
    auto consume = [&] {
        if (!serve::readFrame(fd, response))
            return false;
        res.latency.push_back(std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  inflight.front())
                                  .count());
        inflight.pop_front();
        ++res.responses;
        if (!verified) {
            // Full bit-exact check once per connection; the cheap
            // prefix check covers the rest of the stream.
            const auto tokens = serve::splitTokens(response);
            verified = true;
            if (tokens.size() != 3 + kBatch ||
                std::string(tokens[0]) != "ok") {
                ++res.bad;
            } else {
                for (std::size_t i = 0; i < kBatch; ++i)
                    if (std::string(tokens[3 + i]) !=
                        serve::formatDouble(expected[i]))
                        ++res.bad;
            }
        } else if (!response.starts_with("ok ")) {
            ++res.bad;
        }
        return true;
    };

    while (secondsSince(start) < seconds && !inflight.empty()) {
        if (!consume())
            break;
        if (!sendOne())
            break;
    }
    while (!inflight.empty() && consume()) {
    }
    ::close(fd);
    return res;
}

double
pct(std::vector<double> &v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(v.size() - 1));
    return v[idx];
}

serve::Server *g_server = nullptr;
serve::ModelRegistry *g_registry = nullptr;

/** Kernel timer: one GEMM batch predict through the engine. */
void
BM_EngineGemmBatch(benchmark::State &state)
{
    Rng rng(9);
    std::vector<serve::FeatureVector> rows;
    for (std::size_t i = 0; i < kBatch; ++i)
        rows.push_back(randomRow(rng));
    auto &engine = g_server->engine();
    for (auto _ : state) {
        const auto out = engine.predict("default", rows);
        benchmark::DoNotOptimize(out.predictions);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_EngineGemmBatch)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    const core::HwSwModel model = quickModel();
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->publish("default", model, "bench");
    g_registry = registry.get();

    serve::ServerOptions opts;
    opts.engine.threads = 2;
    serve::Server server(registry, opts);
    server.start();
    g_server = &server;

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::section("closed-loop reference (scalar round trips)");
    std::printf("%d synchronous clients, one predict outstanding "
                "each, ~%.1fs\n", kConnections, kDuration);
    const double closedRate = runClosedLoop(server, kDuration);
    std::printf("closed-loop: %.0f pred/s\n", closedRate);

    bench::section("open-loop pipelined load");
    std::printf("%d connections x window %zu, batch %zu, %zu reactor "
                "shard(s), ~%.1fs\n", kConnections, kWindow, kBatch,
                server.reactorCount(), kDuration);
    std::vector<OpenLoopResult> results(kConnections);
    std::vector<std::thread> conns;
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < kConnections; ++t) {
        conns.emplace_back([&, t] {
            results[t] = runOpenLoopConn(server.port(), 200 + t,
                                         model, kDuration);
        });
    }
    for (auto &t : conns)
        t.join();
    const double elapsed = secondsSince(start);

    std::uint64_t responses = 0, bad = 0;
    std::vector<double> latency;
    for (auto &r : results) {
        responses += r.responses;
        bad += r.bad;
        latency.insert(latency.end(), r.latency.begin(),
                       r.latency.end());
    }
    const double openRate =
        static_cast<double>(responses * kBatch) / elapsed;
    const double p50 = pct(latency, 0.50) * 1e3;
    const double p99 = pct(latency, 0.99) * 1e3;
    const double speedup =
        closedRate > 0.0 ? openRate / closedRate : 0.0;
    std::printf("open-loop: %.0f pred/s (%llu responses, %llu bad)\n",
                openRate, static_cast<unsigned long long>(responses),
                static_cast<unsigned long long>(bad));
    std::printf("request latency: p50 %.2fms  p99 %.2fms\n", p50, p99);

    bench::section("acceptance");
    const bool speedOk = speedup >= kSpeedupFloor;
    const bool sloOk = p99 <= kP99SloMs;
    const bool clean = bad == 0 && responses > 0;
    std::printf("open-loop >= %.0fx closed-loop: %.1fx (%s)\n",
                kSpeedupFloor, speedup, speedOk ? "PASS" : "FAIL");
    std::printf("p99 <= %.0fms SLO: %.2fms (%s)\n", kP99SloMs, p99,
                sloOk ? "PASS" : "FAIL");
    std::printf("responses bit-exact and well-formed: %s\n",
                clean ? "PASS" : "FAIL");

    bench::JsonReport report("bench_serve_openloop");
    report.add("closedloop_pred_per_s", closedRate, "pred/s");
    report.add("openloop_pred_per_s", openRate, "pred/s");
    report.add("openloop_speedup_x", speedup, "x");
    report.add("openloop_p99_ms", p99, "ms");
    report.write();

    server.stop();
    return speedOk && sloOk && clean ? 0 : 1;
}
