/**
 * @file
 * Figures 7(a) and 8(a): steady-state interpolation accuracy.
 *
 * The integrated hardware-software space is sparsely sampled, the
 * heuristic produces a model, and accuracy is validated against 140
 * independently sampled application-architecture pairs (application
 * performance aggregates per-shard predictions, Section 4.4).
 *
 * Expected shape (paper): single-digit median error (5-10%) and
 * predicted-vs-true correlation rho > 0.9.
 */
#include "bench_common.hpp"

using namespace hwsw;

namespace {

std::shared_ptr<core::SpaceSampler> g_sampler;
core::Dataset g_train;
core::HwSwModel g_model;

void
BM_PredictPair(benchmark::State &state)
{
    Rng rng(5);
    const auto cfg = uarch::UarchConfig::randomSample(rng);
    const auto rec = g_sampler->record(0, 0, cfg);
    for (auto _ : state) {
        const double pred = g_model.predict(rec);
        benchmark::DoNotOptimize(pred);
    }
}
BENCHMARK(BM_PredictPair);

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale;
    g_sampler = bench::makeSuiteSampler(scale);
    g_train = g_sampler->sample(scale.trainPairsPerApp, 1);

    std::printf("training profiles: %zu (%zu apps x %zu pairs); "
                "design grid %llu points\n",
                g_train.size(), g_sampler->numApps(),
                scale.trainPairsPerApp,
                static_cast<unsigned long long>(
                    uarch::UarchConfig::gridSize()));

    core::GeneticSearch search(g_train, bench::gaOptions(scale));
    const core::GaResult result = search.run();
    g_model.fit(result.best.spec, g_train);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    // 140 validation application-architecture pairs (20 per app),
    // drawn independently of training.
    Rng rng(777);
    std::vector<std::pair<std::string, std::vector<double>>> per_app;
    std::vector<double> preds, truths;
    for (std::size_t a = 0; a < g_sampler->numApps(); ++a) {
        std::vector<double> errs;
        for (int i = 0; i < 20; ++i) {
            const auto cfg = uarch::UarchConfig::randomSample(rng);
            double pred = 0.0;
            for (std::size_t s = 0; s < scale.shardsPerApp; ++s)
                pred += g_model.predict(g_sampler->record(a, s, cfg));
            pred /= static_cast<double>(scale.shardsPerApp);
            const double truth = g_sampler->appCpi(a, cfg);
            preds.push_back(pred);
            truths.push_back(truth);
            errs.push_back(std::abs(pred - truth) / truth);
        }
        per_app.emplace_back(g_sampler->app(a).name, errs);
    }

    bench::errorBoxplots(
        "Figure 7(a): interpolation error distributions "
        "(140 app-arch pairs)", per_app);

    std::vector<double> all;
    for (const auto &[name, errs] : per_app)
        all.insert(all.end(), errs.begin(), errs.end());
    const auto m = stats::evaluatePredictions(preds, truths);

    bench::section("Figure 8(a): predicted vs true performance");
    TextTable t;
    t.header({"metric", "value", "paper"});
    t.row({"median error", TextTable::pct(median(all)), "~5-10%"});
    t.row({"mean error", TextTable::pct(mean(all)), "-"});
    t.row({"pearson", TextTable::num(m.pearson), ">0.9"});
    t.row({"spearman rho", TextTable::num(m.spearman), ">0.9"});
    std::printf("%s", t.render().c_str());
    std::printf("\nbest model: %zu design columns, %zu interactions\n",
                g_model.numColumns(),
                g_model.spec().interactions.size());
    return 0;
}
