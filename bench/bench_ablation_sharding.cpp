/**
 * @file
 * Ablation of shard-level profiling (Section 2.1): monolithic
 * application profiles obscure intra-application diversity, so a new
 * application can only be predicted if it resembles a whole previous
 * application. Shards relax that constraint -- partial similarity is
 * enough (Figure 1). This harness trains leave-one-app-out models
 * from (a) shard-level profiles and (b) monolithic profiles (every
 * shard replaced by its application's mean characteristics) and
 * compares extrapolation to the held-out application.
 */
#include "bench_common.hpp"

using namespace hwsw;

namespace {

void
BM_MeanFeatures(benchmark::State &state)
{
    bench::Scale scale;
    scale.shardsPerApp = 8;
    auto sampler = bench::makeSuiteSampler(scale);
    const auto &profiles = sampler->profiles(0);
    for (auto _ : state) {
        auto m = prof::meanFeatures(profiles);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_MeanFeatures);

/** Replace each record's software features by its app's mean. */
core::Dataset
monolithize(const core::Dataset &ds,
            const core::SpaceSampler &sampler)
{
    std::map<std::string, std::array<double, prof::kNumSwFeatures>>
        app_means;
    for (std::size_t a = 0; a < sampler.numApps(); ++a)
        app_means[sampler.app(a).name] =
            prof::meanFeatures(sampler.profiles(a));

    core::Dataset out;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        core::ProfileRecord rec = ds[i];
        const auto &mean_f = app_means.at(rec.app);
        for (std::size_t f = 0; f < prof::kNumSwFeatures; ++f)
            rec.vars[f] = mean_f[f];
        out.add(rec);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::Scale scale;
    auto sampler = bench::makeSuiteSampler(scale);
    core::GaOptions ga = bench::gaOptions(scale, 13);
    ga.populationSize = 20;
    ga.generations = 10;

    TextTable t;
    t.header({"held app", "sharded med", "sharded rho",
              "monolithic med", "monolithic rho"});
    std::vector<double> shard_meds, mono_meds;
    for (std::size_t held = 0; held < sampler->numApps(); ++held) {
        std::vector<std::size_t> train_apps;
        for (std::size_t a = 0; a < sampler->numApps(); ++a)
            if (a != held)
                train_apps.push_back(a);
        const core::Dataset train =
            sampler->sampleApps(train_apps, 200, 7);
        const core::Dataset mono_train = monolithize(train, *sampler);

        std::vector<std::size_t> held_idx = {held};
        const core::Dataset target =
            sampler->sampleApps(held_idx, 80, 1000 + held);
        const core::Dataset mono_target =
            monolithize(target, *sampler);

        core::HwSwModel sharded;
        sharded.fit(core::GeneticSearch(train, ga).run().best.spec,
                    train);
        core::HwSwModel mono;
        mono.fit(core::GeneticSearch(mono_train, ga).run().best.spec,
                 mono_train);

        const auto ms = sharded.validate(target);
        const auto mm = mono.validate(mono_target);
        shard_meds.push_back(ms.medianAbsPctError);
        mono_meds.push_back(mm.medianAbsPctError);
        t.row({sampler->app(held).name,
               TextTable::pct(ms.medianAbsPctError),
               TextTable::num(ms.spearman),
               TextTable::pct(mm.medianAbsPctError),
               TextTable::num(mm.spearman)});
    }
    bench::section("sharded vs monolithic profiles: leave-one-app-out "
                   "extrapolation");
    std::printf("%s", t.render().c_str());
    std::printf("\nmean median error: sharded %s vs monolithic %s\n",
                TextTable::pct(mean(shard_meds)).c_str(),
                TextTable::pct(mean(mono_meds)).c_str());
    std::printf("paper (Section 2.1): sharding increases the value of "
                "profiles because partial similarity is shareable\n");
    return 0;
}
