/**
 * @file
 * Section 4.3 "Reduced Profiling Costs": the integrated model needs
 * fewer architectural profiles per application than prior per-
 * application models, because applications share behavior. And a new
 * application can ride on existing profiles with only a handful of
 * its own (the manager's 10-20-profile updates), a much larger
 * saving.
 *
 * Expected shape (paper): 2-4x fewer profiles per application at
 * matched accuracy; 20-40x when existing profiles extrapolate a new
 * application.
 */
#include "bench_common.hpp"

#include "core/manager.hpp"

using namespace hwsw;

namespace {

/** Rich fixed specification so both approaches share a model class. */
core::ModelSpec
richSpec()
{
    core::ModelSpec spec;
    for (std::size_t v = 0; v < core::kNumVars; ++v)
        spec.genes[v] = v < core::kNumSw ? 2 : 3;
    for (std::uint16_t x : {0, 1, 5, 6, 7, 8, 9, 12})
        for (std::uint16_t y = core::kNumSw; y < core::kNumVars; ++y)
            spec.interactions.push_back({x, y});
    spec.normalize();
    return spec;
}

void
BM_BasisTable(benchmark::State &state)
{
    bench::Scale scale;
    scale.shardsPerApp = 8;
    auto sampler = bench::makeSuiteSampler(scale);
    const core::Dataset train = sampler->sample(100, 3);
    for (auto _ : state) {
        auto basis = core::computeBasisTable(train);
        benchmark::DoNotOptimize(basis);
    }
}
BENCHMARK(BM_BasisTable)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::Scale scale;
    auto sampler = bench::makeSuiteSampler(scale);
    const core::ModelSpec spec = richSpec();

    const std::vector<std::size_t> budgets = {10, 15, 25, 40, 60,
                                              100, 150, 250, 400};

    // Accuracy (mean of per-app median errors) as a function of the
    // per-application profiling budget, for isolated per-application
    // models vs. one integrated model sharing all applications' data.
    std::vector<double> per_app_err, integrated_err;
    for (std::size_t budget : budgets) {
        std::vector<double> iso_errs;
        for (std::size_t a = 0; a < sampler->numApps(); ++a) {
            std::vector<std::size_t> one = {a};
            const core::Dataset train =
                sampler->sampleApps(one, budget, 11 + a);
            const core::Dataset val =
                sampler->sampleApps(one, 60, 501 + a);
            core::HwSwModel m;
            m.fit(spec, train);
            iso_errs.push_back(m.validate(val).medianAbsPctError);
        }
        per_app_err.push_back(mean(iso_errs));

        const core::Dataset train = sampler->sample(budget, 21);
        core::HwSwModel m;
        m.fit(spec, train);
        std::vector<double> int_errs;
        for (std::size_t a = 0; a < sampler->numApps(); ++a) {
            std::vector<std::size_t> one = {a};
            const core::Dataset val =
                sampler->sampleApps(one, 60, 601 + a);
            int_errs.push_back(m.validate(val).medianAbsPctError);
        }
        integrated_err.push_back(mean(int_errs));
    }

    bench::section("accuracy vs per-application profiling budget");
    TextTable t;
    t.header({"profiles/app", "per-app models", "integrated model"});
    for (std::size_t i = 0; i < budgets.size(); ++i) {
        t.row({std::to_string(budgets[i]),
               TextTable::pct(per_app_err[i]),
               TextTable::pct(integrated_err[i])});
    }
    std::printf("%s", t.render().c_str());

    // Cost reduction: for each per-app operating point, the smallest
    // integrated budget reaching the same (or better) accuracy.
    double best_reduction = 0.0;
    for (std::size_t i = 0; i < budgets.size(); ++i) {
        for (std::size_t j = 0; j < budgets.size(); ++j) {
            if (integrated_err[j] <= per_app_err[i]) {
                best_reduction = std::max(
                    best_reduction,
                    static_cast<double>(budgets[i]) /
                        static_cast<double>(budgets[j]));
                break;
            }
        }
    }
    std::printf("\nprofiling cost reduction at matched accuracy: up "
                "to %.1fx (paper: 2-4x)\n", best_reduction);
    std::printf("extrapolating a new application via model update: "
                "%.1fx (15 profiles vs %zu; paper: 20-40x)\n",
                static_cast<double>(budgets.back()) / 15.0,
                budgets.back());
    return 0;
}
