/**
 * @file
 * Extension: inferred power models for the general space.
 *
 * The paper's modeling lineage (Lee & Brooks) predicts power alongside
 * performance, and its Section 5 case study models SpMV power; this
 * harness closes the loop for the general Table 1 x Table 2 space.
 * The same genetic machinery fits watts instead of CPI (the Dataset's
 * response is generic), and the combined models drive an
 * energy-efficiency sweep: best performance, best power, and best
 * energy-delay product per application.
 */
#include "bench_common.hpp"

#include "uarch/powermodel.hpp"

using namespace hwsw;

namespace {

void
BM_PowerEstimate(benchmark::State &state)
{
    const auto shards = wl::makeShards(wl::makeApp("astar"), 8192, 1);
    const auto sig = uarch::computeSignature(shards[0]);
    uarch::UarchConfig cfg;
    for (auto _ : state) {
        auto p = uarch::estimatePower(sig, cfg);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_PowerEstimate);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::Scale scale;
    auto sampler = bench::makeSuiteSampler(scale);

    // Build a power dataset: same sparse sampling, watts as response.
    Rng rng(61);
    core::Dataset train, val;
    for (std::size_t a = 0; a < sampler->numApps(); ++a) {
        for (int i = 0; i < 200; ++i) {
            const std::size_t shard =
                rng.nextInt(scale.shardsPerApp);
            const auto cfg = uarch::UarchConfig::randomSample(rng);
            core::ProfileRecord rec = sampler->record(a, shard, cfg);
            rec.perf = uarch::estimatePower(
                sampler->signatures(a)[shard], cfg).total();
            (i < 170 ? train : val).add(rec);
        }
    }

    core::GaOptions ga = bench::gaOptions(scale, 71);
    ga.populationSize = 24;
    ga.generations = 12;
    core::GeneticSearch search(train, ga);
    core::HwSwModel power_model;
    power_model.fit(search.run().best.spec, train);
    const auto metrics = power_model.validate(val);

    bench::section("inferred power model accuracy (watts)");
    TextTable t;
    t.header({"metric", "value"});
    t.row({"median error", TextTable::pct(metrics.medianAbsPctError)});
    t.row({"mean error", TextTable::pct(metrics.meanAbsPctError)});
    t.row({"spearman rho", TextTable::num(metrics.spearman)});
    std::printf("%s", t.render().c_str());

    // Energy-efficiency sweep: per app, pick configs by three
    // objectives using ground truth, and check where they differ.
    bench::section("objective sweep per application (ground truth)");
    TextTable s;
    s.header({"app", "best-perf cfg", "IPC", "W", "best-EDP cfg",
              "IPC", "W"});
    Rng sweep_rng(77);
    std::vector<uarch::UarchConfig> candidates;
    for (int i = 0; i < 200; ++i)
        candidates.push_back(
            uarch::UarchConfig::randomSample(sweep_rng));
    for (std::size_t a = 0; a < sampler->numApps(); ++a) {
        const auto &sig = sampler->signatures(a)[0];
        std::size_t best_perf = 0, best_edp = 0;
        double perf_score = 1e30, edp_score = 1e30;
        for (std::size_t c = 0; c < candidates.size(); ++c) {
            const double cpi = uarch::shardCpi(sig, candidates[c]);
            const double w =
                uarch::estimatePower(sig, candidates[c]).total();
            // energy-delay: (W * t) * t ~ W * cpi^2
            const double edp = w * cpi * cpi;
            if (cpi < perf_score) {
                perf_score = cpi;
                best_perf = c;
            }
            if (edp < edp_score) {
                edp_score = edp;
                best_edp = c;
            }
        }
        auto describe = [&](std::size_t c) {
            const auto &cfg = candidates[c];
            return "w" + std::to_string(cfg.width) + "/L2:" +
                std::to_string(cfg.l2KB) + "K";
        };
        const auto &pc = candidates[best_perf];
        const auto &ec = candidates[best_edp];
        s.row({sampler->app(a).name, describe(best_perf),
               TextTable::num(1.0 / uarch::shardCpi(sig, pc)),
               TextTable::num(uarch::estimatePower(sig, pc).total()),
               describe(best_edp),
               TextTable::num(1.0 / uarch::shardCpi(sig, ec)),
               TextTable::num(uarch::estimatePower(sig, ec).total())});
    }
    std::printf("%s", s.render().c_str());
    std::printf("\nthe EDP-optimal machine is consistently smaller "
                "than the performance-optimal one -- the coordinated "
                "efficiency argument of Section 5.3, now available "
                "for the general space\n");
    return 0;
}
