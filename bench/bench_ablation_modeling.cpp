/**
 * @file
 * Ablation of the paper's modeling strategies (Section 2): starting
 * from the full method -- genetic specification with transformations
 * and interactions on a log-stabilized response -- remove one
 * ingredient at a time and measure steady-state interpolation
 * accuracy. Quantifies what each strategy buys (the paper reports,
 * e.g., that automatically searched models beat hand-tuned ones by
 * ~10%).
 */
#include "bench_common.hpp"

using namespace hwsw;

namespace {

core::ModelSpec
linearAllVars()
{
    core::ModelSpec spec;
    for (std::size_t v = 0; v < core::kNumVars; ++v)
        spec.genes[v] = 1;
    return spec;
}

void
BM_EvaluateSpec(benchmark::State &state)
{
    bench::Scale scale;
    scale.shardsPerApp = 8;
    auto sampler = bench::makeSuiteSampler(scale);
    const core::Dataset train = sampler->sample(100, 3);
    core::GeneticSearch search(train, bench::gaOptions(scale));
    const core::ModelSpec spec = linearAllVars();
    for (auto _ : state) {
        auto f = search.evaluate(spec);
        benchmark::DoNotOptimize(f);
    }
}
BENCHMARK(BM_EvaluateSpec)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::Scale scale;
    auto sampler = bench::makeSuiteSampler(scale);
    const core::Dataset train =
        sampler->sample(scale.trainPairsPerApp, 1);
    const core::Dataset val = sampler->sample(40, 2);

    // Full method: genetic search over specs.
    core::GeneticSearch search(train, bench::gaOptions(scale));
    const core::GaResult ga = search.run();

    TextTable t;
    t.header({"configuration", "median err", "spearman rho",
              "columns"});
    auto report = [&](const std::string &name,
                      const core::ModelSpec &spec, bool log_response) {
        core::HwSwModel m;
        m.setLogResponse(log_response);
        m.fit(spec, train);
        const auto metrics = m.validate(val);
        t.row({name, TextTable::pct(metrics.medianAbsPctError),
               TextTable::num(metrics.spearman),
               std::to_string(m.numColumns())});
        return metrics.medianAbsPctError;
    };

    const double full = report("full (genetic spec)", ga.best.spec,
                               true);

    // Ablation 1: drop interaction terms from the found spec.
    core::ModelSpec no_inter = ga.best.spec;
    no_inter.interactions.clear();
    report("  - interactions", no_inter, true);

    // Ablation 2: force all transformations to linear.
    core::ModelSpec linear_only = ga.best.spec;
    for (auto &g : linear_only.genes)
        if (g != 0)
            g = 1;
    report("  - non-linear transforms", linear_only, true);

    // Ablation 3: no log response.
    report("  - stabilized response", ga.best.spec, false);

    // Ablation 4: no search at all (hand baseline: everything
    // linear, no interactions -- the naive regression of Section 3.1).
    const double naive = report("naive linear baseline",
                                linearAllVars(), true);

    std::printf("%s", t.render().c_str());
    std::printf("\ngenetic specification beats the naive baseline by "
                "%.0f%% relative (paper: automated search beats "
                "hand-tuning by ~10%%)\n",
                100.0 * (naive - full) / naive);
    return 0;
}
