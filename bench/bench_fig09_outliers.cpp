/**
 * @file
 * Figure 9: why extrapolation fails for behavioral outliers.
 *
 * (a) per-characteristic difference between each application's mean
 * and its training applications' mean -- bwaves stands far from the
 * pack (more taken branches and FP, fewer integer/memory ops) while
 * sjeng's differences are modest. (b)/(c) CPI histograms: the other
 * applications cluster, bwaves is lower and bimodal.
 */
#include "bench_common.hpp"

#include "common/histogram.hpp"

using namespace hwsw;

namespace {

void
BM_AppCpi(benchmark::State &state)
{
    bench::Scale scale;
    scale.shardsPerApp = 8;
    auto sampler = bench::makeSuiteSampler(scale);
    uarch::UarchConfig cfg;
    for (auto _ : state) {
        const double cpi = sampler->appCpi(1, cfg);
        benchmark::DoNotOptimize(cpi);
    }
}
BENCHMARK(BM_AppCpi);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::Scale scale;
    auto sampler = bench::makeSuiteSampler(scale);

    // Per-app mean characteristics.
    std::vector<std::array<double, prof::kNumSwFeatures>> means;
    for (std::size_t a = 0; a < sampler->numApps(); ++a)
        means.push_back(prof::meanFeatures(sampler->profiles(a)));

    auto training_mean = [&](std::size_t held, std::size_t feature) {
        double acc = 0.0;
        for (std::size_t a = 0; a < sampler->numApps(); ++a)
            if (a != held)
                acc += means[a][feature];
        return acc / static_cast<double>(sampler->numApps() - 1);
    };

    bench::section("Figure 9(a): normalized characteristic "
                   "differences vs training mean");
    TextTable t;
    std::vector<std::string> hdr = {"feature"};
    hdr.emplace_back("sjeng");
    hdr.emplace_back("bwaves");
    t.header(hdr);
    double sjeng_total = 0, bwaves_total = 0;
    const std::size_t sjeng_idx = 6, bwaves_idx = 1;
    for (std::size_t f = 0; f < prof::kNumSwFeatures; ++f) {
        auto rel_diff = [&](std::size_t app) {
            const double tm = training_mean(app, f);
            const double scale_f = std::max(std::abs(tm), 1e-9);
            return (means[app][f] - tm) / scale_f;
        };
        const double ds = rel_diff(sjeng_idx);
        const double db = rel_diff(bwaves_idx);
        sjeng_total += std::abs(ds);
        bwaves_total += std::abs(db);
        t.row({prof::ShardProfile::featureNames()[f],
               TextTable::num(ds, 3), TextTable::num(db, 3)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\nsum |difference|: sjeng %.2f  bwaves %.2f  "
                "(paper: sjeng modest, bwaves not represented)\n",
                sjeng_total, bwaves_total);

    // CPI histograms over shards x sampled architectures.
    Rng rng(5);
    std::vector<double> others_cpi, bwaves_cpi;
    for (int i = 0; i < 12; ++i) {
        const auto cfg = uarch::UarchConfig::randomSample(rng);
        for (std::size_t a = 0; a < sampler->numApps(); ++a) {
            for (std::size_t s = 0; s < scale.shardsPerApp; ++s) {
                const double cpi = sampler->shardCpi(a, s, cfg);
                if (a == bwaves_idx)
                    bwaves_cpi.push_back(cpi);
                else
                    others_cpi.push_back(cpi);
            }
        }
    }

    bench::section("Figure 9(b): shard CPI, all applications except "
                   "bwaves");
    Histogram hb(0.0, 8.0, 16);
    hb.addAll(others_cpi);
    std::printf("%s", hb.render().c_str());
    std::printf("median %.2f\n", median(others_cpi));

    bench::section("Figure 9(c): shard CPI, bwaves");
    Histogram hc(0.0, 8.0, 16);
    hc.addAll(bwaves_cpi);
    std::printf("%s", hc.render().c_str());
    std::printf("median %.2f\n", median(bwaves_cpi));
    std::printf("\npaper: other applications cluster; bwaves sits "
                "lower with greater variance and bimodal phases\n");
    return 0;
}
