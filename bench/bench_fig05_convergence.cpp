/**
 * @file
 * Figure 5: genetic-search convergence -- the sum of per-application
 * median errors falls as the population evolves, with diminishing
 * marginal benefit approaching 20 generations.
 */
#include "bench_common.hpp"

using namespace hwsw;

namespace {

std::shared_ptr<core::SpaceSampler> g_sampler;
core::Dataset g_train;

void
BM_GaGeneration(benchmark::State &state)
{
    // Cost of evaluating one candidate model across all folds
    // (a generation is populationSize of these, embarrassingly
    // parallel -- Section 4.2's "Modeling Time").
    core::GaOptions opts = bench::gaOptions(bench::Scale{});
    core::GeneticSearch search(g_train, opts);
    Rng rng(7);
    const core::ModelSpec spec = core::ModelSpec::random(rng, 0.45, 12);
    for (auto _ : state) {
        auto fitness = search.evaluate(spec);
        benchmark::DoNotOptimize(fitness);
    }
}
BENCHMARK(BM_GaGeneration)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale;
    g_sampler = bench::makeSuiteSampler(scale);
    g_train = g_sampler->sample(scale.trainPairsPerApp, 1);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    core::GeneticSearch search(g_train, bench::gaOptions(scale));
    const core::GaResult result = search.run();

    bench::section("Figure 5: sum of per-app median errors by "
                   "generation");
    TextTable t;
    t.header({"generation", "sum of median errors", "best fitness",
              "mean fitness"});
    for (const auto &h : result.history) {
        t.row({std::to_string(h.generation),
               TextTable::num(h.bestSumMedianError, 4),
               TextTable::num(h.bestFitness, 4),
               TextTable::num(h.meanFitness, 4)});
    }
    std::printf("%s", t.render().c_str());

    const double first = result.history.front().bestSumMedianError;
    const double last = result.history.back().bestSumMedianError;
    std::printf("\nimprovement: %.3f -> %.3f (%.0f%% lower)\n", first,
                last, 100.0 * (first - last) / first);
    std::printf("paper: errors fall with diminishing returns by "
                "generation 20\n");
    std::printf("best model: %s\n",
                result.best.spec.describe().c_str());
    return 0;
}
