/**
 * @file
 * Figure 10: shard-level extrapolation. Shards from n-1 applications
 * train a model that predicts the held application's shard
 * performance, each application taking a turn as the newcomer.
 *
 * Expected shape (paper): low median errors (~8%) and rho >= 0.9 for
 * applications whose shards resemble the training mix; Section 4.5
 * documents bwaves as the failure case whose behavior no training
 * application covers (our gemsFDTD analog shares that difficulty:
 * it is one of only two FP applications).
 */
#include "bench_common.hpp"

using namespace hwsw;

namespace {

std::shared_ptr<core::SpaceSampler> g_sampler;

void
BM_ShardSignature(benchmark::State &state)
{
    const auto shards = wl::makeShards(wl::makeApp("hmmer"), 16384, 1);
    for (auto _ : state) {
        auto sig = uarch::computeSignature(shards[0]);
        benchmark::DoNotOptimize(sig);
    }
}
BENCHMARK(BM_ShardSignature)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::Scale scale;
    g_sampler = bench::makeSuiteSampler(scale);

    core::GaOptions ga = bench::gaOptions(scale, 17);
    ga.populationSize = 24;
    ga.generations = 12;

    std::vector<std::pair<std::string, std::vector<double>>> groups;
    std::vector<double> all;
    TextTable t;
    t.header({"held application", "median err", "spearman rho"});
    for (std::size_t held = 0; held < g_sampler->numApps(); ++held) {
        std::vector<std::size_t> train_apps;
        for (std::size_t a = 0; a < g_sampler->numApps(); ++a)
            if (a != held)
                train_apps.push_back(a);
        const core::Dataset train = g_sampler->sampleApps(
            train_apps, scale.trainPairsPerApp, 7);
        core::GeneticSearch search(train, ga);
        core::HwSwModel model;
        model.fit(search.run().best.spec, train);

        std::vector<std::size_t> held_idx = {held};
        // 300 separately profiled shard-architecture pairs.
        const core::Dataset target =
            g_sampler->sampleApps(held_idx, 300, 1234 + held);
        const auto metrics = model.validate(target);
        const auto errs = stats::absPctErrors(model.predictAll(target),
                                              target.perfColumn());
        all.insert(all.end(), errs.begin(), errs.end());
        groups.emplace_back(g_sampler->app(held).name, errs);
        t.row({g_sampler->app(held).name,
               TextTable::pct(metrics.medianAbsPctError),
               TextTable::num(metrics.spearman)});
    }

    bench::errorBoxplots(
        "Figure 10: shard extrapolation error distribution "
        "(300 shards per held application)", groups, 1.0);
    bench::section("per-application summary");
    std::printf("%s", t.render().c_str());
    std::printf("\noverall median error: %s  (paper: ~8%% with the "
                "bwaves outlier discussed in Section 4.5)\n",
                TextTable::pct(median(all)).c_str());
    return 0;
}
