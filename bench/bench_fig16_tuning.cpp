/**
 * @file
 * Figure 16: performance and energy under application tuning (best
 * block size, fixed cache), architecture tuning (best cache,
 * unblocked code), and coordinated tuning, across the Table 4 suite.
 * All searches rank candidates with the inferred model and validate
 * the chosen point in the simulator.
 *
 * Expected shape (paper): application and architecture tuning give
 * ~1.6x and ~2.7x; coordinated tuning ~5.0x. Application tuning
 * reduces energy per flop (17 -> 11 nJ); architecture tuning raises
 * it (~25 nJ); coordinated tuning wins performance while slightly
 * reducing energy (~0.9x).
 */
#include "bench_common.hpp"

#include "spmv/matgen.hpp"
#include "spmv/tuner.hpp"

using namespace hwsw;

namespace {

void
BM_TuneSweep(benchmark::State &state)
{
    const auto csr =
        spmv::generateMatrix(spmv::matrixInfo("venkat01"), 0.08);
    spmv::TunerOptions topts;
    topts.trainingSamples = 100;
    topts.validationSamples = 30;
    topts.sim.maxAccesses = 60 * 1000;
    spmv::CoordinatedTuner tuner(csr, topts);
    for (auto _ : state) {
        auto outcome = tuner.tune();
        benchmark::DoNotOptimize(outcome);
    }
}
BENCHMARK(BM_TuneSweep)->Unit(benchmark::kMillisecond)->Iterations(2);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    TextTable perf;
    perf.header({"#", "matrix", "base", "app", "arch", "coord",
                 "app x", "arch x", "coord x"});
    TextTable energy;
    energy.header({"#", "matrix", "base nJ/F", "app nJ/F",
                   "arch nJ/F", "coord nJ/F"});

    std::vector<double> app_spd, arch_spd, coord_spd;
    std::vector<double> e_base, e_app, e_arch, e_coord;
    for (const auto &info : spmv::table4()) {
        const auto csr = spmv::generateMatrix(info, 0.15);
        spmv::TunerOptions topts;
        topts.trainingSamples = 300;
        topts.validationSamples = 60;
        topts.sim.maxAccesses = 120 * 1000;
        spmv::CoordinatedTuner tuner(csr, topts);
        const spmv::TuneOutcome o = tuner.tune();

        const double base = o.baseline.mflops;
        app_spd.push_back(o.appTuned.mflops / base);
        arch_spd.push_back(o.archTuned.mflops / base);
        coord_spd.push_back(o.coordinated.mflops / base);
        e_base.push_back(o.baseline.nJPerFlop);
        e_app.push_back(o.appTuned.nJPerFlop);
        e_arch.push_back(o.archTuned.nJPerFlop);
        e_coord.push_back(o.coordinated.nJPerFlop);

        perf.row({std::to_string(info.id), info.name,
                  TextTable::num(base),
                  TextTable::num(o.appTuned.mflops),
                  TextTable::num(o.archTuned.mflops),
                  TextTable::num(o.coordinated.mflops),
                  TextTable::num(o.appTuned.mflops / base, 3) + "x",
                  TextTable::num(o.archTuned.mflops / base, 3) + "x",
                  TextTable::num(o.coordinated.mflops / base, 3) +
                      "x"});
        energy.row({std::to_string(info.id), info.name,
                    TextTable::num(o.baseline.nJPerFlop),
                    TextTable::num(o.appTuned.nJPerFlop),
                    TextTable::num(o.archTuned.nJPerFlop),
                    TextTable::num(o.coordinated.nJPerFlop)});
    }

    bench::section("Figure 16(a): performance tuning (Mflop/s)");
    std::printf("%s", perf.render().c_str());
    std::printf("\nmean speedups: app %.2fx  arch %.2fx  coord %.2fx  "
                "(paper: 1.6x / 2.7x / 5.0x)\n",
                mean(app_spd), mean(arch_spd), mean(coord_spd));

    bench::section("Figure 16(b): energy efficiency (nJ per true "
                   "flop)");
    std::printf("%s", energy.render().c_str());
    std::printf("\nmean nJ/flop: base %.1f  app %.1f  arch %.1f  "
                "coord %.1f\n",
                mean(e_base), mean(e_app), mean(e_arch),
                mean(e_coord));
    std::printf("paper: app tuning reduces energy (17 -> 11 nJ/F); "
                "arch tuning raises it (~25 nJ/F); coordinated wins "
                "performance at ~0.9x energy\n");
    return 0;
}
