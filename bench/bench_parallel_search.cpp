/**
 * @file
 * Section 4.2 "Modeling Time": the genetic search's inner loop is
 * embarrassingly parallel -- every candidate in a generation can be
 * evaluated independently (the paper reports 9x speedup on twelve
 * cores with R's doMC/Multicore). This harness measures the same
 * population-parallel evaluation on the persistent ThreadPool, plus
 * the cross-generation fitness memo: elites and duplicate offspring
 * cost a hash lookup instead of a K-fold refit, so the pooled and
 * memoized search beats even ideal thread scaling of the serial
 * baseline. A counter dump shows the cache working (hits appear from
 * generation 1 on, once elites are carried over).
 */
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/metrics.hpp"

using namespace hwsw;

namespace {

core::Dataset g_train;

struct RunOutcome
{
    double seconds = 0.0;
    core::GaResult result;
};

RunOutcome
timedRun(unsigned threads, bool memoize)
{
    bench::Scale scale;
    scale.populationSize = 16;
    scale.generations = 3;
    core::GaOptions opts = bench::gaOptions(scale, 77);
    opts.numThreads = threads;
    opts.memoizeFitness = memoize;
    core::GeneticSearch search(g_train, opts);
    const auto t0 = std::chrono::steady_clock::now();
    RunOutcome out;
    out.result = search.run();
    benchmark::DoNotOptimize(out.result);
    const auto t1 = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

void
BM_SearchSerial(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(timedRun(1, false).seconds);
}
BENCHMARK(BM_SearchSerial)->Unit(benchmark::kSecond)->Iterations(1);

void
BM_SearchPooledMemoized(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(timedRun(0, true).seconds);
}
BENCHMARK(BM_SearchPooledMemoized)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale;
    scale.shardsPerApp = 12;
    auto sampler = bench::makeSuiteSampler(scale);
    g_train = sampler->sample(120, 1);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::section("population-parallel search scaling");
    const unsigned hw = std::max(1u,
                                 std::thread::hardware_concurrency());
    std::printf("hardware threads available: %u\n", hw);

    // Seed baseline: serial, no memoization (per-generation thread
    // spawn cost aside, this is what the pre-pool search did).
    const double serial = timedRun(1, false).seconds;
    bench::JsonReport report("bench_parallel_search");
    report.add("serial_seconds", serial, "s");
    TextTable t;
    t.header({"threads", "memo", "seconds", "speedup"});
    t.row({"1", "off", TextTable::num(serial, 3), "1.0x"});
    core::GaResult pooled_best;
    double pooled_seconds = serial;
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        if (n > 2 * hw)
            break;
        const RunOutcome run = timedRun(n, true);
        t.row({std::to_string(n), "on",
               TextTable::num(run.seconds, 3),
               TextTable::num(serial / run.seconds, 3) + "x"});
        report.add("pooled_memo_" + std::to_string(n) + "t_seconds",
                   run.seconds, "s");
        pooled_best = run.result;
        pooled_seconds = std::min(pooled_seconds, run.seconds);
    }
    std::printf("%s", t.render().c_str());
    report.add("best_pooled_seconds", pooled_seconds, "s");
    report.add("best_speedup", serial / pooled_seconds, "x");
    report.write();

    bench::section("memoization counters (last pooled run)");
    std::printf("%s",
                metrics::renderEntries(pooled_best.metrics.entries())
                    .c_str());
    std::printf("  per generation (hits/misses):");
    for (const auto &g : pooled_best.history)
        std::printf(" %llu/%llu",
                    static_cast<unsigned long long>(g.cacheHits),
                    static_cast<unsigned long long>(g.cacheMisses));
    std::printf("\n");
    std::printf("generation 0 is all misses (cold cache); elites make "
                "every later generation\nstart with hits, so updates "
                "re-fit only genuinely new chromosomes.\n");

    std::printf("\npaper: twelve cores give ~9x; a generation with n "
                "models admits n-way parallelism.\n"
                "(speedup saturates at this machine's %u hardware "
                "threads; the memo adds its\ngain on top, so pooled+"
                "memoized can exceed the thread count alone)\n", hw);
    return 0;
}
