/**
 * @file
 * Section 4.2 "Modeling Time": the genetic search's inner loop is
 * embarrassingly parallel -- every candidate in a generation can be
 * evaluated independently (the paper reports 9x speedup on twelve
 * cores with R's doMC/Multicore; this harness measures the same
 * population-parallel evaluation with std::thread workers).
 */
#include "bench_common.hpp"

#include <chrono>
#include <thread>

using namespace hwsw;

namespace {

core::Dataset g_train;

double
timedRun(unsigned threads)
{
    bench::Scale scale;
    scale.populationSize = 16;
    scale.generations = 3;
    core::GaOptions opts = bench::gaOptions(scale, 77);
    opts.numThreads = threads;
    core::GeneticSearch search(g_train, opts);
    const auto t0 = std::chrono::steady_clock::now();
    auto result = search.run();
    benchmark::DoNotOptimize(result);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

void
BM_SearchSerial(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(timedRun(1));
}
BENCHMARK(BM_SearchSerial)->Unit(benchmark::kSecond)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale;
    scale.shardsPerApp = 12;
    auto sampler = bench::makeSuiteSampler(scale);
    g_train = sampler->sample(120, 1);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::section("population-parallel search scaling");
    const unsigned hw = std::max(1u,
                                 std::thread::hardware_concurrency());
    std::printf("hardware threads available: %u\n", hw);

    const double serial = timedRun(1);
    TextTable t;
    t.header({"threads", "seconds", "speedup"});
    t.row({"1", TextTable::num(serial, 3), "1.0x"});
    for (unsigned n : {2u, 4u, 8u}) {
        if (n > 2 * hw)
            break;
        const double tn = timedRun(n);
        t.row({std::to_string(n), TextTable::num(tn, 3),
               TextTable::num(serial / tn, 3) + "x"});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\npaper: twelve cores give ~9x; a generation with n "
                "models admits n-way parallelism.\n"
                "(speedup saturates at this machine's %u hardware "
                "threads)\n", hw);
    return 0;
}
