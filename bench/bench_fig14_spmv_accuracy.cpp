/**
 * @file
 * Figure 14: SpMV performance and power model accuracy across the
 * eleven Table 4 matrices -- 400 sparse training samples and 100
 * validation samples per matrix.
 *
 * Expected shape (paper): median errors of 4-6% for both performance
 * and power.
 */
#include "bench_common.hpp"

#include "spmv/matgen.hpp"
#include "spmv/tuner.hpp"

using namespace hwsw;

namespace {

void
BM_SpmvModelFit(benchmark::State &state)
{
    const auto csr =
        spmv::generateMatrix(spmv::matrixInfo("memplus"), 0.1);
    spmv::SimOptions sim;
    sim.maxAccesses = 60 * 1000;
    const auto samples = spmv::sampleSpmvSpace(csr, 120, 5, sim);
    for (auto _ : state) {
        spmv::SpmvModel m(spmv::SpmvTarget::Mflops);
        m.fit(samples);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_SpmvModelFit)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::vector<std::pair<std::string, std::vector<double>>> perf_errs;
    std::vector<std::pair<std::string, std::vector<double>>> power_errs;
    TextTable t;
    t.header({"#", "matrix", "perf median", "perf rho",
              "power median", "power rho"});

    for (const auto &info : spmv::table4()) {
        const auto csr = spmv::generateMatrix(info, 0.15);
        spmv::SimOptions sim;
        sim.maxAccesses = 120 * 1000;
        const auto train = spmv::sampleSpmvSpace(csr, 400, 17, sim);
        const auto val = spmv::sampleSpmvSpace(csr, 100, 18, sim);

        spmv::SpmvModel perf(spmv::SpmvTarget::Mflops);
        perf.fit(train);
        spmv::SpmvModel power(spmv::SpmvTarget::Power);
        power.fit(train);

        const auto pm = perf.validate(val);
        const auto wm = power.validate(val);

        std::vector<double> pe, we;
        for (const auto &s : val) {
            pe.push_back(std::abs(perf.predict(s) - s.mflops) /
                         s.mflops);
            we.push_back(std::abs(power.predict(s) - s.powerW) /
                         s.powerW);
        }
        perf_errs.emplace_back(info.name, pe);
        power_errs.emplace_back(info.name, we);
        t.row({std::to_string(info.id), info.name,
               TextTable::pct(pm.medianAbsPctError),
               TextTable::num(pm.spearman),
               TextTable::pct(wm.medianAbsPctError),
               TextTable::num(wm.spearman)});
    }

    bench::errorBoxplots("Figure 14(a): performance prediction error",
                         perf_errs, 0.3);
    bench::errorBoxplots("Figure 14(b): power prediction error",
                         power_errs, 0.3);
    bench::section("per-matrix summary (400 train / 100 validation)");
    std::printf("%s", t.render().c_str());
    std::printf("\npaper: median errors between 4-6%% across 11 "
                "matrices for performance and power\n");
    return 0;
}
