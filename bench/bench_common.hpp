/**
 * @file
 * Shared scaffolding for the experiment harnesses. Each bench binary
 * reproduces one table or figure from the paper: it prints the
 * paper-style report to stdout and registers google-benchmark timers
 * for the computational kernels it exercises.
 *
 * Scales are reduced relative to the paper (shards of 16K ops rather
 * than 10M, and smaller genetic-search budgets) so the full suite
 * runs on a laptop in minutes; EXPERIMENTS.md records the mapping.
 */

#ifndef HWSW_BENCH_COMMON_HPP
#define HWSW_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "common/descriptive.hpp"
#include "common/table.hpp"
#include "core/genetic.hpp"
#include "core/sampler.hpp"

namespace hwsw::bench {

/** Experiment scale used by the general-model benches. */
struct Scale
{
    std::size_t shardLength = 16 * 1024;
    std::size_t shardsPerApp = 24;
    std::size_t trainPairsPerApp = 250;
    std::size_t populationSize = 32;
    std::size_t generations = 20;
};

/** Build the standard seven-application sampler. */
inline std::shared_ptr<core::SpaceSampler>
makeSuiteSampler(const Scale &scale)
{
    core::SamplerOptions opts;
    opts.shardLength = scale.shardLength;
    opts.shardsPerApp = scale.shardsPerApp;
    return std::make_shared<core::SpaceSampler>(wl::makeSuite(), opts);
}

/** Default genetic-search options at a given scale. */
inline core::GaOptions
gaOptions(const Scale &scale, std::uint64_t seed = 42)
{
    core::GaOptions opts;
    opts.populationSize = scale.populationSize;
    opts.generations = scale.generations;
    opts.seed = seed;
    return opts;
}

/** Print a section header. */
inline void
section(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/** Print error boxplots on a shared 0..hi scale. */
inline void
errorBoxplots(const std::string &title,
              const std::vector<std::pair<std::string,
                                          std::vector<double>>> &groups,
              double hi = 0.5)
{
    section(title);
    for (const auto &[label, errs] : groups)
        std::printf("%s\n", renderBoxplot(label, errs, 0.0, hi).c_str());
}

} // namespace hwsw::bench

#endif // HWSW_BENCH_COMMON_HPP
