/**
 * @file
 * Shared scaffolding for the experiment harnesses. Each bench binary
 * reproduces one table or figure from the paper: it prints the
 * paper-style report to stdout and registers google-benchmark timers
 * for the computational kernels it exercises.
 *
 * Scales are reduced relative to the paper (shards of 16K ops rather
 * than 10M, and smaller genetic-search budgets) so the full suite
 * runs on a laptop in minutes; EXPERIMENTS.md records the mapping.
 */

#ifndef HWSW_BENCH_COMMON_HPP
#define HWSW_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/descriptive.hpp"
#include "common/table.hpp"
#include "core/genetic.hpp"
#include "core/sampler.hpp"

namespace hwsw::bench {

/**
 * Machine-readable results for CI trend tracking. Each bench collects
 * named scalar results and appends one run object to a JSON array
 * file (several benches can share the file: an existing array is
 * extended, anything else is overwritten with a fresh array). The
 * call to write() is explicit so a crashed bench never leaves a
 * half-written record.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

    /** Record one scalar result (unit is free-form, e.g. "s", "x"). */
    void add(const std::string &name, double value,
             const std::string &unit)
    {
        entries_.push_back({name, value, unit});
    }

    /** Append this run to the JSON array at @p path. */
    void write(const std::string &path = "BENCH_search.json") const
    {
        std::ostringstream obj;
        obj << "  {\"bench\": \"" << escape(bench_)
            << "\", \"results\": [";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const Entry &e = entries_[i];
            char value[64];
            std::snprintf(value, sizeof(value), "%.17g", e.value);
            obj << (i ? ", " : "") << "{\"name\": \"" << escape(e.name)
                << "\", \"value\": " << value << ", \"unit\": \""
                << escape(e.unit) << "\"}";
        }
        obj << "]}";

        std::string existing;
        {
            std::ifstream in(path);
            if (in)
                existing.assign(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
        }
        while (!existing.empty() &&
               std::isspace(static_cast<unsigned char>(existing.back())))
            existing.pop_back();

        std::ofstream out(path, std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "JsonReport: cannot write %s\n",
                         path.c_str());
            return;
        }
        if (!existing.empty() && existing.back() == ']') {
            // Extend the array without parsing it: drop the closing
            // bracket and splice the new object in.
            existing.pop_back();
            while (!existing.empty() &&
                   (std::isspace(
                        static_cast<unsigned char>(existing.back())) ||
                    existing.back() == ','))
                existing.pop_back();
            out << existing << ",\n" << obj.str() << "\n]\n";
        } else {
            out << "[\n" << obj.str() << "\n]\n";
        }
        std::printf("wrote %s (%zu results)\n", path.c_str(),
                    entries_.size());
    }

  private:
    struct Entry
    {
        std::string name;
        double value;
        std::string unit;
    };

    static std::string escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    std::string bench_;
    std::vector<Entry> entries_;
};

/** Experiment scale used by the general-model benches. */
struct Scale
{
    std::size_t shardLength = 16 * 1024;
    std::size_t shardsPerApp = 24;
    std::size_t trainPairsPerApp = 250;
    std::size_t populationSize = 32;
    std::size_t generations = 20;
};

/** Build the standard seven-application sampler. */
inline std::shared_ptr<core::SpaceSampler>
makeSuiteSampler(const Scale &scale)
{
    core::SamplerOptions opts;
    opts.shardLength = scale.shardLength;
    opts.shardsPerApp = scale.shardsPerApp;
    return std::make_shared<core::SpaceSampler>(wl::makeSuite(), opts);
}

/** Default genetic-search options at a given scale. */
inline core::GaOptions
gaOptions(const Scale &scale, std::uint64_t seed = 42)
{
    core::GaOptions opts;
    opts.populationSize = scale.populationSize;
    opts.generations = scale.generations;
    opts.seed = seed;
    return opts;
}

/** Print a section header. */
inline void
section(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/** Print error boxplots on a shared 0..hi scale. */
inline void
errorBoxplots(const std::string &title,
              const std::vector<std::pair<std::string,
                                          std::vector<double>>> &groups,
              double hi = 0.5)
{
    section(title);
    for (const auto &[label, errs] : groups)
        std::printf("%s\n", renderBoxplot(label, errs, 0.0, hi).c_str());
}

} // namespace hwsw::bench

#endif // HWSW_BENCH_COMMON_HPP
