/**
 * @file
 * Extension: synthetic-benchmark training coverage (the future-work
 * avenue of Section 4.5). bwaves extrapolates badly because no
 * training application exhibits its FP-heavy, branch-taken-heavy
 * behavior. Synthetic benchmarks give explicit control over software
 * behavior and populate the space uniformly; coordinated with real
 * profiles, they should close most of the outlier gap.
 *
 * The harness predicts bwaves (and gemsFDTD, the other FP code) from
 * leave-one-out models trained (a) on the six real applications only
 * and (b) on the six real applications plus a batch of synthetic
 * benchmarks.
 */
#include "bench_common.hpp"

#include "workload/synthetic.hpp"

using namespace hwsw;

namespace {

void
BM_SyntheticAppGeneration(benchmark::State &state)
{
    std::uint64_t seed = 1;
    for (auto _ : state) {
        auto app = wl::makeSyntheticApp(seed++);
        auto shard = wl::makeShards(app, 4096, 1);
        benchmark::DoNotOptimize(shard);
    }
}
BENCHMARK(BM_SyntheticAppGeneration)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::Scale scale;
    auto real = bench::makeSuiteSampler(scale);

    // Synthetic coverage batch, profiled exactly like real apps.
    core::SamplerOptions sopts;
    sopts.shardLength = scale.shardLength;
    sopts.shardsPerApp = 8;
    wl::SyntheticOptions syn_opts;
    syn_opts.fpPhaseProb = 0.55; // bias toward the empty FP corner
    core::SpaceSampler synth(wl::makeSyntheticSuite(16, 9000, syn_opts),
                             sopts);

    core::GaOptions ga = bench::gaOptions(scale, 19);
    ga.populationSize = 20;
    ga.generations = 10;
    ga.holdOutFitness = true; // select for generalization

    TextTable t;
    t.header({"held app", "real-only med", "real-only rho",
              "+synthetic med", "+synthetic rho"});

    for (std::size_t held : {std::size_t{1}, std::size_t{3}}) {
        std::vector<std::size_t> train_apps;
        for (std::size_t a = 0; a < real->numApps(); ++a)
            if (a != held)
                train_apps.push_back(a);
        const core::Dataset real_train =
            real->sampleApps(train_apps, scale.trainPairsPerApp, 7);

        core::Dataset augmented = real_train;
        augmented.addAll(synth.sample(40, 23));

        std::vector<std::size_t> held_idx = {held};
        const core::Dataset target =
            real->sampleApps(held_idx, 120, 4000 + held);

        core::HwSwModel real_only;
        real_only.fit(
            core::GeneticSearch(real_train, ga).run().best.spec,
            real_train);
        core::HwSwModel with_synth;
        with_synth.fit(
            core::GeneticSearch(augmented, ga).run().best.spec,
            augmented);

        const auto mr = real_only.validate(target);
        const auto ms = with_synth.validate(target);
        t.row({real->app(held).name,
               TextTable::pct(mr.medianAbsPctError),
               TextTable::num(mr.spearman),
               TextTable::pct(ms.medianAbsPctError),
               TextTable::num(ms.spearman)});
    }

    bench::section("synthetic training coverage vs the FP outliers");
    std::printf("%s", t.render().c_str());
    std::printf("\npaper (Section 4.5): 'training data can be "
                "augmented to better cover the space of software "
                "behavior... synthetic benchmarks provide explicit "
                "control'\n");
    return 0;
}
