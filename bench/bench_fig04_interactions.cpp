/**
 * @file
 * Figure 4: frequency of pairwise interactions in the best models of
 * a converged genetic search, arranged as the software-software /
 * software-hardware / hardware-hardware triangle.
 *
 * Expected shape (paper): interactions remain diverse across the
 * best models (pairwise terms must combine to capture sophisticated
 * effects), with hardware-software pairs prominent.
 */
#include "bench_common.hpp"

using namespace hwsw;

namespace {

void
BM_CrossoverMutation(benchmark::State &state)
{
    Rng rng(3);
    core::ModelSpec a = core::ModelSpec::random(rng, 0.5, 12);
    core::ModelSpec b = core::ModelSpec::random(rng, 0.5, 12);
    for (auto _ : state) {
        core::ModelSpec child = core::crossoverNewInteraction(a, b, rng);
        core::mutateInteraction(child, rng);
        benchmark::DoNotOptimize(child);
    }
}
BENCHMARK(BM_CrossoverMutation);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::Scale scale;
    scale.populationSize = 56; // large enough for "50 best models"
    scale.generations = 12;
    auto sampler = bench::makeSuiteSampler(scale);
    const core::Dataset train =
        sampler->sample(scale.trainPairsPerApp, 1);
    core::GeneticSearch search(train, bench::gaOptions(scale));
    const core::GaResult result = search.run();

    const std::size_t n_best =
        std::min<std::size_t>(50, result.population.size());
    std::vector<std::vector<int>> freq(
        core::kNumVars, std::vector<int>(core::kNumVars, 0));
    std::size_t sw_sw = 0, sw_hw = 0, hw_hw = 0, total = 0;
    for (std::size_t m = 0; m < n_best; ++m) {
        for (const auto &it : result.population[m].spec.interactions) {
            ++freq[it.a][it.b];
            ++total;
            const bool a_sw = core::isSoftwareVar(it.a);
            const bool b_sw = core::isSoftwareVar(it.b);
            if (a_sw && b_sw)
                ++sw_sw;
            else if (!a_sw && !b_sw)
                ++hw_hw;
            else
                ++sw_hw;
        }
    }

    bench::section("Figure 4: interaction frequency in the " +
                   std::to_string(n_best) + " best models");
    // Upper triangle, rows x1..y13, digits capped at 9 for display.
    std::printf("      ");
    for (std::size_t c = 0; c < core::kNumVars; ++c)
        std::printf("%s", c < core::kNumSw ? "x" : "y");
    std::printf("\n");
    for (std::size_t r = 0; r < core::kNumVars; ++r) {
        std::printf("%-5s ",
                    core::Dataset::varNames()[r].substr(0, 5).c_str());
        for (std::size_t c = 0; c < core::kNumVars; ++c) {
            if (c <= r) {
                std::printf(" ");
            } else {
                const int f = std::min(freq[r][c], 9);
                std::printf("%c", f == 0 ? '.' : char('0' + f));
            }
        }
        std::printf("\n");
    }

    bench::section("interaction class totals");
    TextTable t;
    t.header({"class", "count", "share"});
    t.row({"software-software", std::to_string(sw_sw),
           TextTable::pct(total ? double(sw_sw) / total : 0)});
    t.row({"software-hardware", std::to_string(sw_hw),
           TextTable::pct(total ? double(sw_hw) / total : 0)});
    t.row({"hardware-hardware", std::to_string(hw_hw),
           TextTable::pct(total ? double(hw_hw) / total : 0)});
    std::printf("%s", t.render().c_str());

    // Diversity: distinct pairs used across best models.
    std::size_t distinct = 0;
    for (std::size_t r = 0; r < core::kNumVars; ++r)
        for (std::size_t c = 0; c < core::kNumVars; ++c)
            distinct += freq[r][c] > 0;
    std::printf("\ndistinct pairs in use: %zu (of %zu possible)\n",
                distinct,
                core::kNumVars * (core::kNumVars - 1) / 2);
    std::printf("paper: best models exhibit considerable diversity in "
                "pairwise interactions\n");
    return 0;
}
