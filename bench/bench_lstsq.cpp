/**
 * @file
 * Workspace QR micro-benchmark. The genetic search's inner loop is
 * one ridge-regularized pivoted-QR solve per (candidate, fold); the
 * workspace overload of lstsq reuses one set of buffers across solves
 * instead of allocating a fresh factor matrix and per-reflector
 * temporaries each call. This harness times both paths on design
 * shapes representative of the search (a few hundred training rows,
 * tens of columns) and emits the ratio to BENCH_search.json.
 */
#include "bench_common.hpp"

#include <chrono>

#include "common/rng.hpp"
#include "stats/qr.hpp"

using namespace hwsw;

namespace {

struct System
{
    stats::Matrix X;
    std::vector<double> z;
    std::vector<double> w;
};

System
makeSystem(std::size_t m, std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    System sys;
    sys.X = stats::Matrix(m, n);
    sys.z.resize(m);
    sys.w.resize(m);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            sys.X(r, c) = rng.nextUniform(-1.0, 1.0);
        sys.z[r] = rng.nextUniform(-2.0, 2.0);
        sys.w[r] = rng.nextUniform(0.5, 2.0);
    }
    // One duplicated column so the collinearity-drop path stays hot.
    if (n >= 4)
        for (std::size_t r = 0; r < m; ++r)
            sys.X(r, n - 1) = sys.X(r, 1);
    return sys;
}

void
BM_LstsqAllocating(benchmark::State &state)
{
    const System sys = makeSystem(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(1)), 42);
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::lstsq(sys.X, sys.z));
}
BENCHMARK(BM_LstsqAllocating)
    ->Args({240, 12})->Args({240, 30})->Args({500, 60})
    ->Unit(benchmark::kMicrosecond);

void
BM_LstsqWorkspace(benchmark::State &state)
{
    const System sys = makeSystem(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(1)), 42);
    stats::LstsqWorkspace ws;
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::lstsq(sys.X, sys.z, ws));
}
BENCHMARK(BM_LstsqWorkspace)
    ->Args({240, 12})->Args({240, 30})->Args({500, 60})
    ->Unit(benchmark::kMicrosecond);

void
BM_WeightedLstsqAllocating(benchmark::State &state)
{
    const System sys = makeSystem(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(1)), 43);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stats::weightedLstsq(sys.X, sys.z, sys.w));
}
BENCHMARK(BM_WeightedLstsqAllocating)
    ->Args({240, 30})->Unit(benchmark::kMicrosecond);

void
BM_WeightedLstsqWorkspace(benchmark::State &state)
{
    const System sys = makeSystem(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(1)), 43);
    stats::LstsqWorkspace ws;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stats::weightedLstsq(sys.X, sys.z, sys.w, ws));
}
BENCHMARK(BM_WeightedLstsqWorkspace)
    ->Args({240, 30})->Unit(benchmark::kMicrosecond);

/** Median-of-repeats seconds for one solve, via a caller's lambda. */
template <typename F>
double
timeSolve(F &&solve, int reps = 7, int inner = 50)
{
    std::vector<double> samples;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < inner; ++i)
            benchmark::DoNotOptimize(solve());
        const auto t1 = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double>(t1 - t0).count() / inner);
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::section("workspace vs allocating lstsq (median of 7)");
    bench::JsonReport report("bench_lstsq");
    TextTable t;
    t.header({"shape", "alloc us", "workspace us", "ratio"});
    const std::pair<std::size_t, std::size_t> shapes[] = {
        {240, 12}, {240, 30}, {500, 60}};
    for (const auto &[m, n] : shapes) {
        const System sys = makeSystem(m, n, 42);
        stats::LstsqWorkspace ws;
        const double alloc =
            timeSolve([&] { return stats::lstsq(sys.X, sys.z); });
        const double reuse =
            timeSolve([&] { return stats::lstsq(sys.X, sys.z, ws); });
        const std::string shape =
            std::to_string(m) + "x" + std::to_string(n);
        t.row({shape, TextTable::num(alloc * 1e6, 4),
               TextTable::num(reuse * 1e6, 4),
               TextTable::num(alloc / reuse, 3) + "x"});
        report.add("lstsq_alloc_" + shape, alloc * 1e6, "us");
        report.add("lstsq_ws_" + shape, reuse * 1e6, "us");
        report.add("lstsq_ratio_" + shape, alloc / reuse, "x");
    }
    std::printf("%s", t.render().c_str());
    report.write();

    std::printf("\nthe workspace path performs the identical "
                "arithmetic (bit-equal results; see\n"
                "test_qr_workspace) and differs only in buffer "
                "reuse, so the ratio isolates the\nallocation and "
                "page-touch overhead the search no longer pays.\n");
    return 0;
}
