/**
 * @file
 * QR kernel micro-benchmark. The genetic search's inner loop is one
 * ridge-regularized pivoted-QR solve per (candidate, fold); since the
 * blocked rewrite the solver kernel itself — panel factorization with
 * compact-WY trailing updates over column-major workspace storage —
 * carries the optimization, not just buffer reuse. This harness times
 * the blocked workspace path against the fixed scalar reference
 * solver (qr_reference.hpp, the pre-blocked implementation kept
 * verbatim as a yardstick) on design shapes representative of the
 * search and beyond it, attributes time to factorization vs.
 * back-substitution with the workspace phase timers, sweeps the panel
 * width, and emits per-shape ratios plus their geometric mean to
 * BENCH_search.json for the CI perf gate.
 */
#include "bench_common.hpp"

#include <chrono>
#include <cmath>

#include "common/rng.hpp"
#include "stats/qr.hpp"
#include "stats/qr_reference.hpp"

using namespace hwsw;

namespace {

struct System
{
    stats::Matrix X;
    std::vector<double> z;
    std::vector<double> w;
};

System
makeSystem(std::size_t m, std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    System sys;
    sys.X = stats::Matrix(m, n);
    sys.z.resize(m);
    sys.w.resize(m);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            sys.X(r, c) = rng.nextUniform(-1.0, 1.0);
        sys.z[r] = rng.nextUniform(-2.0, 2.0);
        sys.w[r] = rng.nextUniform(0.5, 2.0);
    }
    // One duplicated column so the collinearity-drop path stays hot.
    if (n >= 4)
        for (std::size_t r = 0; r < m; ++r)
            sys.X(r, n - 1) = sys.X(r, 1);
    return sys;
}

void
BM_LstsqReference(benchmark::State &state)
{
    const System sys = makeSystem(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(1)), 42);
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::referenceLstsq(sys.X, sys.z));
}
BENCHMARK(BM_LstsqReference)
    ->Args({240, 12})->Args({240, 30})->Args({500, 60})
    ->Unit(benchmark::kMicrosecond);

void
BM_LstsqWorkspace(benchmark::State &state)
{
    const System sys = makeSystem(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(1)), 42);
    stats::LstsqWorkspace ws;
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::lstsq(sys.X, sys.z, ws));
}
BENCHMARK(BM_LstsqWorkspace)
    ->Args({240, 12})->Args({240, 30})->Args({500, 60})
    ->Args({2000, 60})->Unit(benchmark::kMicrosecond);

void
BM_WeightedLstsqWorkspace(benchmark::State &state)
{
    const System sys = makeSystem(
        static_cast<std::size_t>(state.range(0)),
        static_cast<std::size_t>(state.range(1)), 43);
    stats::LstsqWorkspace ws;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            stats::weightedLstsq(sys.X, sys.z, sys.w, ws));
}
BENCHMARK(BM_WeightedLstsqWorkspace)
    ->Args({240, 12})->Unit(benchmark::kMicrosecond);

/** Median-of-repeats seconds for one solve, via a caller's lambda. */
template <typename F>
double
timeSolve(F &&solve, int reps = 7, int inner = 50)
{
    std::vector<double> samples;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < inner; ++i)
            benchmark::DoNotOptimize(solve());
        const auto t1 = std::chrono::steady_clock::now();
        samples.push_back(
            std::chrono::duration<double>(t1 - t0).count() / inner);
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

/** Keep per-shape loop counts sane as shapes grow. */
int
innerReps(std::size_t m, std::size_t n)
{
    const double flops = static_cast<double>(m) * n * n;
    return std::max(4, static_cast<int>(4e8 / std::max(flops, 1.0)));
}

struct Shape
{
    std::size_t m, n;
    bool weighted;
};

std::string
shapeName(const Shape &s)
{
    return std::to_string(s.m) + "x" + std::to_string(s.n) +
           (s.weighted ? "w" : "");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    // ---- blocked workspace kernel vs fixed scalar reference -------
    bench::section(
        "blocked workspace vs scalar reference (median of 7)");
    bench::JsonReport report("bench_lstsq");
    TextTable t;
    t.header({"shape", "reference us", "blocked us", "ratio"});
    const Shape shapes[] = {{240, 12, false},
                            {240, 30, false},
                            {500, 60, false},
                            {2000, 60, false},
                            {240, 12, true}};
    double logSum = 0.0;
    std::size_t nRatios = 0;
    double ratio240x30 = 0.0, ratio500x60 = 0.0;
    for (const Shape &s : shapes) {
        const System sys = makeSystem(s.m, s.n, s.weighted ? 43 : 42);
        stats::LstsqWorkspace ws;
        const int inner = innerReps(s.m, s.n);
        double ref, blocked;
        if (s.weighted) {
            ref = timeSolve(
                [&] {
                    return stats::referenceWeightedLstsq(sys.X, sys.z,
                                                         sys.w);
                },
                7, inner);
            blocked = timeSolve(
                [&] {
                    return stats::weightedLstsq(sys.X, sys.z, sys.w,
                                                ws);
                },
                7, inner);
        } else {
            ref = timeSolve(
                [&] { return stats::referenceLstsq(sys.X, sys.z); }, 7,
                inner);
            blocked = timeSolve(
                [&] { return stats::lstsq(sys.X, sys.z, ws); }, 7,
                inner);
        }
        const double ratio = ref / blocked;
        logSum += std::log(ratio);
        ++nRatios;
        if (s.m == 240 && s.n == 30 && !s.weighted)
            ratio240x30 = ratio;
        if (s.m == 500 && s.n == 60 && !s.weighted)
            ratio500x60 = ratio;
        const std::string shape = shapeName(s);
        t.row({shape, TextTable::num(ref * 1e6, 4),
               TextTable::num(blocked * 1e6, 4),
               TextTable::num(ratio, 3) + "x"});
        report.add("lstsq_ref_" + shape, ref * 1e6, "us");
        report.add("lstsq_ws_" + shape, blocked * 1e6, "us");
        report.add("lstsq_ratio_" + shape, ratio, "x");
    }
    const double geomean =
        std::exp(logSum / static_cast<double>(nRatios));
    std::printf("%s", t.render().c_str());
    std::printf("geomean speedup: %.3fx\n", geomean);
    report.add("lstsq_geomean_ratio", geomean, "x");

    // ---- phase attribution: factorization vs back-substitution ----
    bench::section("phase split (factor vs back-substitution)");
    TextTable pt;
    pt.header({"shape", "factor us", "backsub us", "factor %"});
    for (const Shape &s : shapes) {
        if (s.weighted)
            continue;
        const System sys = makeSystem(s.m, s.n, 42);
        stats::LstsqWorkspace ws;
        ws.collectPhaseTimes = true;
        const int reps = 3 * innerReps(s.m, s.n);
        for (int i = 0; i < reps; ++i)
            benchmark::DoNotOptimize(stats::lstsq(sys.X, sys.z, ws));
        const double factor = ws.factorSeconds / reps * 1e6;
        const double solve = ws.solveSeconds / reps * 1e6;
        const std::string shape = shapeName(s);
        pt.row({shape, TextTable::num(factor, 4),
                TextTable::num(solve, 4),
                TextTable::num(100.0 * factor / (factor + solve), 1)});
        report.add("lstsq_factor_us_" + shape, factor, "us");
        report.add("lstsq_backsub_us_" + shape, solve, "us");
    }
    std::printf("%s", pt.render().c_str());

    // ---- panel width sweep (re-tune HWSW_QR_BLOCK with this) -------
    bench::section("panel width sweep (us per solve)");
    TextTable st;
    st.header({"block", "240x30 us", "500x60 us", "2000x60 us"});
    for (std::size_t nb : {1u, 2u, 4u, 6u, 8u, 12u, 16u, 24u, 32u}) {
        std::vector<std::string> row = {std::to_string(nb)};
        for (const Shape &s :
             {Shape{240, 30, false}, Shape{500, 60, false},
              Shape{2000, 60, false}}) {
            const System sys = makeSystem(s.m, s.n, 42);
            stats::LstsqWorkspace ws;
            ws.blockSize = nb;
            const double us =
                timeSolve([&] { return stats::lstsq(sys.X, sys.z, ws); },
                          5, innerReps(s.m, s.n)) *
                1e6;
            row.push_back(TextTable::num(us, 4));
        }
        st.row(row);
    }
    std::printf("%s", st.render().c_str());
    std::printf("(compiled-in default: HWSW_QR_BLOCK=%zu)\n",
                stats::kQrBlockSize);

    report.write();

    const bool ok = ratio240x30 >= 1.3 && ratio500x60 >= 1.3;
    std::printf("\nacceptance shapes 240x30=%.3fx 500x60=%.3fx "
                "(target >= 1.3x): %s\n",
                ratio240x30, ratio500x60, ok ? "PASS" : "WARN");

    std::printf(
        "\nratios compare the blocked compact-WY workspace kernel "
        "against the fixed\nscalar reference solver "
        "(qr_reference.hpp); results agree to the tolerance\npolicy "
        "of DESIGN.md section 5.12 (see test_qr_workspace).\n");
    return 0;
}
