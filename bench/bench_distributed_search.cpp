/**
 * @file
 * Distributed island-model search scaling: the same total search
 * budget (islands x per-island population x generations) run (a)
 * in-process by the sequential reference runIslandModel(), and (b)
 * as a coordinator plus one real worker thread per island over
 * loopback TCP with the island.* protocol verbs. The harness checks
 * the two champions match bit-identically (the determinism contract
 * the distributed path ships with) and reports wall-clock and
 * coordination-overhead numbers to BENCH_search.json for CI trend
 * tracking.
 */
#include "bench_common.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "common/assert.hpp"
#include "common/fault/fault.hpp"
#include "common/metrics.hpp"
#include "core/island.hpp"
#include "serve/island.hpp"
#include "serve/server.hpp"

using namespace hwsw;

namespace {

core::Dataset g_train;

core::IslandOptions
islandOpts(std::size_t islands)
{
    core::IslandOptions opts;
    opts.ga.populationSize = 16;
    opts.ga.generations = 4;
    opts.ga.seed = 77;
    opts.ga.numThreads = 1;
    opts.islands = islands;
    opts.migrationInterval = 2;
    opts.migrants = 2;
    return opts;
}

struct DistOutcome
{
    double seconds = 0.0;
    core::GaResult result;
    serve::IslandCoordinatorStats stats;
};

DistOutcome
timedDistributed(const core::IslandOptions &opts,
                 double poll_seconds = 0.002)
{
    const auto t0 = std::chrono::steady_clock::now();
    auto registry = std::make_shared<serve::ModelRegistry>();
    serve::IslandCoordinator coordinator(opts);
    serve::Server server(registry, {}, nullptr, &coordinator);
    server.start();

    std::vector<std::thread> workers;
    workers.reserve(opts.islands);
    for (std::size_t i = 0; i < opts.islands; ++i) {
        workers.emplace_back([&opts, i, &server, poll_seconds] {
            serve::IslandWorkerOptions w;
            w.port = server.port();
            w.island = i;
            w.pollSeconds = poll_seconds;
            serve::runIslandWorker(g_train, opts, w);
        });
    }
    for (std::thread &t : workers)
        t.join();

    DistOutcome out;
    if (coordinator.waitForReports(60.0))
        out.result = coordinator.result();
    out.stats = coordinator.stats();
    server.stop();
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    benchmark::DoNotOptimize(out.result);
    return out;
}

/**
 * Chaos-smoke mode (HWSW_CHAOS=1): a 4-island sync run with a
 * mid-generation worker kill, probabilistic heartbeat loss, and a
 * network partition all armed. The run must complete through the
 * supervision machinery and the champion must stay bit-identical to
 * the in-process reference. Returns the process exit code: CI runs
 * this as an assertion, not a trend.
 */
int
runChaosSmoke(bench::JsonReport &report)
{
    bench::section("chaos smoke: kill + heartbeat loss + partition");
    core::IslandOptions opts = islandOpts(4);
    const core::GaResult reference =
        core::runIslandModel(g_train, opts);

    const auto dir = std::filesystem::temp_directory_path() /
        "hwsw-bench-chaos";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    opts.checkpointDir = dir.string();

    auto registry = std::make_shared<serve::ModelRegistry>();
    serve::IslandCoordinator coordinator(opts);
    serve::Server server(registry, {}, nullptr, &coordinator);
    server.start();

    auto &faults = fault::FaultRegistry::instance();
    faults.reset();
    faults.setEnabled(true);
    faults.armSpec("island.worker.kill.1:nth=2,once");
    faults.armSpec("island.heartbeat.drop:p=0.05");
    faults.armSpec("island.partition.3");

    const auto run_worker = [&](std::size_t island) {
        serve::IslandWorkerOptions w;
        w.port = server.port();
        w.island = island;
        w.pollSeconds = 0.002;
        serve::runIslandWorker(g_train, opts, w);
    };

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.emplace_back(run_worker, 0);
    workers.emplace_back([&] {
        bool killed = false;
        try {
            run_worker(1);
        } catch (const FatalError &) {
            killed = true; // injected mid-generation death
        }
        if (killed) {
            coordinator.revokeLease(1);
            run_worker(1); // resumes from the checkpoint
        }
    });
    workers.emplace_back(run_worker, 2);
    workers.emplace_back([&] {
        bool partitioned = false;
        try {
            run_worker(3);
        } catch (const FatalError &) {
            partitioned = true; // cut off from the coordinator
        }
        if (partitioned) {
            faults.disarm("island.partition.3");
            coordinator.revokeLease(3);
            run_worker(3);
        }
    });
    for (std::thread &t : workers)
        t.join();
    faults.setEnabled(false);
    faults.reset();

    const bool completed = coordinator.waitForReports(60.0);
    const core::GaResult recovered =
        completed ? coordinator.result() : core::GaResult{};
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    server.stop();
    std::filesystem::remove_all(dir);

    const bool identical = completed &&
        reference.best.spec == recovered.best.spec &&
        reference.best.fitness == recovered.best.fitness;
    report.add("chaos_completed", completed ? 1.0 : 0.0, "bool");
    report.add("chaos_identical", identical ? 1.0 : 0.0, "bool");
    std::printf("chaos run: completed=%s identical=%s in %.3fs "
                "(respawn-after-kill, partition heal, %llu "
                "heartbeats)\n",
                completed ? "yes" : "NO", identical ? "yes" : "NO",
                seconds,
                static_cast<unsigned long long>(
                    coordinator.stats().heartbeats));
    if (!completed || !identical) {
        std::fprintf(stderr, "FAIL: chaos smoke did not recover to "
                             "the reference champion\n");
        return 1;
    }
    return 0;
}

void
BM_DistributedTwoIslands(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            timedDistributed(islandOpts(2)).seconds);
}
BENCHMARK(BM_DistributedTwoIslands)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale;
    scale.shardsPerApp = 12;
    auto sampler = bench::makeSuiteSampler(scale);
    g_train = sampler->sample(120, 1);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::section("distributed island-model search");
    bench::JsonReport report("bench_distributed_search");
    TextTable t;
    t.header({"islands", "reference s", "distributed s", "overhead",
              "identical"});

    for (const std::size_t islands : {1u, 2u, 4u}) {
        const core::IslandOptions opts = islandOpts(islands);

        const auto r0 = std::chrono::steady_clock::now();
        const core::GaResult reference =
            core::runIslandModel(g_train, opts);
        const double ref_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - r0)
                .count();

        const DistOutcome dist = timedDistributed(opts);
        const bool identical =
            reference.best.spec == dist.result.best.spec &&
            reference.best.fitness == dist.result.best.fitness;

        const std::string tag =
            "islands" + std::to_string(islands);
        report.add(tag + "_reference_seconds", ref_seconds, "s");
        report.add(tag + "_distributed_seconds", dist.seconds, "s");
        report.add(tag + "_identical", identical ? 1.0 : 0.0,
                   "bool");
        t.row({std::to_string(islands),
               TextTable::num(ref_seconds, 3),
               TextTable::num(dist.seconds, 3),
               TextTable::num(dist.seconds / ref_seconds, 2) + "x",
               identical ? "yes" : "NO"});

        if (islands == 2) {
            report.add("coordination_migrations",
                       static_cast<double>(dist.stats.migratePosts),
                       "count");
            report.add("coordination_waits",
                       static_cast<double>(dist.stats.waitAnswers),
                       "count");
        }
        if (!identical)
            std::fprintf(stderr,
                         "WARNING: distributed champion diverged at "
                         "%zu islands\n",
                         islands);
    }
    std::printf("%s", t.render().c_str());

    // Sync vs async migration under a barrier-bound schedule: many
    // barriers (interval 1) and a worker poll interval sized for
    // cross-host rendezvous (100 ms — WAN-ish, not the 2 ms loopback
    // poll of the scaling phase) make the cost of bulk-synchronous
    // rendezvous visible: at every barrier the early arriver sleeps
    // a poll quantum waiting for its source, and the lost quantum
    // phase-shifts it into waiting again at the next barrier. Async
    // proceeds past every barrier with the newest available
    // migrants, so that tax disappears.
    bench::section("sync vs async migration (barrier-bound)");
    TextTable at;
    at.header({"islands", "sync s", "async s", "speedup", "sync eval s",
               "async eval s", "sync waits"});
    for (const std::size_t islands : {2u, 4u}) {
        core::IslandOptions opts = islandOpts(islands);
        // Barrier-dominated regime: a small population keeps the
        // per-generation evaluation cheap next to the 100 ms
        // rendezvous quantum, so the numbers isolate coordination
        // cost rather than trajectory-dependent evaluation cost.
        opts.ga.populationSize = 8;
        opts.ga.generations = 24;
        opts.migrationInterval = 1;

        const DistOutcome sync = timedDistributed(opts, 0.1);
        opts.asyncMigration = true;
        const DistOutcome async = timedDistributed(opts, 0.1);
        const bool async_done = !async.result.history.empty();
        const double speedup =
            async.seconds > 0.0 ? sync.seconds / async.seconds : 0.0;

        const std::string tag =
            "islands" + std::to_string(islands);
        report.add(tag + "_sync_barrier_seconds", sync.seconds, "s");
        report.add(tag + "_async_seconds", async.seconds, "s");
        report.add("async_speedup_" + std::to_string(islands) +
                       "islands",
                   speedup, "x");
        at.row({std::to_string(islands),
                TextTable::num(sync.seconds, 3),
                TextTable::num(async.seconds, 3),
                TextTable::num(speedup, 2) + "x",
                TextTable::num(sync.result.metrics.evalSeconds, 3),
                TextTable::num(async.result.metrics.evalSeconds, 3),
                std::to_string(sync.stats.waitAnswers)});
        if (!async_done)
            std::fprintf(stderr,
                         "WARNING: async run did not complete at "
                         "%zu islands\n",
                         islands);
    }
    std::printf("%s", at.render().c_str());

    int exit_code = 0;
    if (const char *chaos = std::getenv("HWSW_CHAOS");
        chaos && chaos[0] && chaos[0] != '0')
        exit_code = runChaosSmoke(report);

    report.write();

    std::printf(
        "\nthe distributed run pays socket + serialization overhead "
        "per barrier; its value\nis horizontal scale (workers on "
        "other machines) and fault tolerance, while the\nchampion "
        "stays bit-identical to the single-process reference.\n");
    return exit_code;
}
