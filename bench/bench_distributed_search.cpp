/**
 * @file
 * Distributed island-model search scaling: the same total search
 * budget (islands x per-island population x generations) run (a)
 * in-process by the sequential reference runIslandModel(), and (b)
 * as a coordinator plus one real worker thread per island over
 * loopback TCP with the island.* protocol verbs. The harness checks
 * the two champions match bit-identically (the determinism contract
 * the distributed path ships with) and reports wall-clock and
 * coordination-overhead numbers to BENCH_search.json for CI trend
 * tracking.
 */
#include "bench_common.hpp"

#include <chrono>
#include <thread>

#include "common/metrics.hpp"
#include "core/island.hpp"
#include "serve/island.hpp"
#include "serve/server.hpp"

using namespace hwsw;

namespace {

core::Dataset g_train;

core::IslandOptions
islandOpts(std::size_t islands)
{
    core::IslandOptions opts;
    opts.ga.populationSize = 16;
    opts.ga.generations = 4;
    opts.ga.seed = 77;
    opts.ga.numThreads = 1;
    opts.islands = islands;
    opts.migrationInterval = 2;
    opts.migrants = 2;
    return opts;
}

struct DistOutcome
{
    double seconds = 0.0;
    core::GaResult result;
    serve::IslandCoordinatorStats stats;
};

DistOutcome
timedDistributed(const core::IslandOptions &opts)
{
    const auto t0 = std::chrono::steady_clock::now();
    auto registry = std::make_shared<serve::ModelRegistry>();
    serve::IslandCoordinator coordinator(opts);
    serve::Server server(registry, {}, nullptr, &coordinator);
    server.start();

    std::vector<std::thread> workers;
    workers.reserve(opts.islands);
    for (std::size_t i = 0; i < opts.islands; ++i) {
        workers.emplace_back([&opts, i, &server] {
            serve::IslandWorkerOptions w;
            w.port = server.port();
            w.island = i;
            w.pollSeconds = 0.002;
            serve::runIslandWorker(g_train, opts, w);
        });
    }
    for (std::thread &t : workers)
        t.join();

    DistOutcome out;
    if (coordinator.waitForReports(60.0))
        out.result = coordinator.result();
    out.stats = coordinator.stats();
    server.stop();
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    benchmark::DoNotOptimize(out.result);
    return out;
}

void
BM_DistributedTwoIslands(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            timedDistributed(islandOpts(2)).seconds);
}
BENCHMARK(BM_DistributedTwoIslands)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale;
    scale.shardsPerApp = 12;
    auto sampler = bench::makeSuiteSampler(scale);
    g_train = sampler->sample(120, 1);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::section("distributed island-model search");
    bench::JsonReport report("bench_distributed_search");
    TextTable t;
    t.header({"islands", "reference s", "distributed s", "overhead",
              "identical"});

    for (const std::size_t islands : {1u, 2u, 4u}) {
        const core::IslandOptions opts = islandOpts(islands);

        const auto r0 = std::chrono::steady_clock::now();
        const core::GaResult reference =
            core::runIslandModel(g_train, opts);
        const double ref_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - r0)
                .count();

        const DistOutcome dist = timedDistributed(opts);
        const bool identical =
            reference.best.spec == dist.result.best.spec &&
            reference.best.fitness == dist.result.best.fitness;

        const std::string tag =
            "islands" + std::to_string(islands);
        report.add(tag + "_reference_seconds", ref_seconds, "s");
        report.add(tag + "_distributed_seconds", dist.seconds, "s");
        report.add(tag + "_identical", identical ? 1.0 : 0.0,
                   "bool");
        t.row({std::to_string(islands),
               TextTable::num(ref_seconds, 3),
               TextTable::num(dist.seconds, 3),
               TextTable::num(dist.seconds / ref_seconds, 2) + "x",
               identical ? "yes" : "NO"});

        if (islands == 2) {
            report.add("coordination_migrations",
                       static_cast<double>(dist.stats.migratePosts),
                       "count");
            report.add("coordination_waits",
                       static_cast<double>(dist.stats.waitAnswers),
                       "count");
        }
        if (!identical)
            std::fprintf(stderr,
                         "WARNING: distributed champion diverged at "
                         "%zu islands\n",
                         islands);
    }
    std::printf("%s", t.render().c_str());
    report.write();

    std::printf(
        "\nthe distributed run pays socket + serialization overhead "
        "per barrier; its value\nis horizontal scale (workers on "
        "other machines) and fault tolerance, while the\nchampion "
        "stays bit-identical to the single-process reference.\n");
    return 0;
}
