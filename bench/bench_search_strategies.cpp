/**
 * @file
 * Head-to-head comparison of every registered search strategy: one
 * harness, one dataset, one evaluation budget (population x
 * generations), every name in the stage registry. The genetic path
 * is the paper's GA (Section 3.3/3.4); the alternatives (simulated
 * annealing, successive halving) ride the same scoring pipeline —
 * EvalScratch pool, fitness memo, thread pool — so the comparison
 * isolates the operator schedule, not the evaluation machinery.
 *
 * Emits search_<name>_best_fit and search_<name>_seconds per
 * strategy into BENCH_search.json; CI gates best_fit direction-aware
 * (min: a regression is a *larger* best cost) and requires the
 * timing rows to exist, so a strategy missing from the benchmark is
 * a registry-hygiene failure, not a silent omission.
 */
#include "bench_common.hpp"

#include <chrono>

#include "common/metrics.hpp"
#include "core/search/registry.hpp"

using namespace hwsw;

namespace {

core::Dataset g_train;

struct StrategyOutcome
{
    double seconds = 0.0;
    core::GaResult result;
};

StrategyOutcome
runStrategy(const std::string &name)
{
    bench::Scale scale;
    scale.populationSize = 16;
    scale.generations = 6;
    core::GaOptions opts = bench::gaOptions(scale, 77);
    opts.numThreads = 0; // hardware concurrency, like `hwsw train`
    opts.search = name;
    core::GeneticSearch engine(g_train, opts);
    const auto t0 = std::chrono::steady_clock::now();
    StrategyOutcome out;
    out.result = engine.run();
    benchmark::DoNotOptimize(out.result);
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return out;
}

void
BM_SearchStrategy(benchmark::State &state, const std::string &name)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runStrategy(name).seconds);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Scale scale;
    scale.shardsPerApp = 12;
    auto sampler = bench::makeSuiteSampler(scale);
    g_train = sampler->sample(120, 1);

    // Every registered strategy, by name, so a new registration is
    // benchmarked (and therefore gated) with no edits here.
    const auto names =
        core::search::StageRegistry::instance().strategyNames();
    for (const std::string &name : names)
        benchmark::RegisterBenchmark(("BM_Search_" + name).c_str(),
                                     BM_SearchStrategy, name)
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    bench::section("registered strategies, head to head");
    std::printf("same dataset, same budget (16 x 6 evaluations), "
                "same scoring pipeline\n");
    bench::JsonReport report("bench_search_strategies");
    TextTable t;
    t.header({"strategy", "best fitness", "sum med err", "seconds",
              "cache hit rate"});
    for (const std::string &name : names) {
        const StrategyOutcome run = runStrategy(name);
        t.row({name, TextTable::num(run.result.best.fitness, 4),
               TextTable::num(run.result.best.sumMedianError, 4),
               TextTable::num(run.seconds, 3),
               TextTable::num(run.result.metrics.hitRate(), 3)});
        report.add("search_" + name + "_best_fit",
                   run.result.best.fitness, "fit");
        report.add("search_" + name + "_seconds", run.seconds, "s");
    }
    std::printf("%s", t.render().c_str());
    report.write();

    std::printf("\nall strategies share the evaluation machinery; "
                "the spread above is purely\nthe operator schedule. "
                "The GA is the paper's reference; anneal/halving "
                "are the\ndrop-in searchers the registry makes "
                "first-class.\n");
    return 0;
}
