/**
 * @file
 * Serving-subsystem throughput harness: an in-process `hwsw serve`
 * instance on an ephemeral loopback port, driven by closed-loop
 * client threads issuing batch predictions. Reports predictions/s,
 * client-observed tail latency, and the server's own per-verb
 * histogram quantiles.
 *
 * The second phase is the hot-swap acceptance check from the design:
 * while clients run at full tilt, the model is republished and rolled
 * back continuously; every in-flight request must complete against
 * the snapshot it pinned — the run reports the number of swaps
 * overlapped and asserts zero failed requests.
 *
 * The third phase is the resilience acceptance check: the same load
 * under ~1% injected socket faults (short reads/writes plus rare
 * read errors). Every answer that reaches a client is verified
 * bit-exactly against the local model — the run asserts zero wrong
 * answers and bounds the throughput degradation at 15%.
 */
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/fault/fault.hpp"
#include "core/serialize.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace hwsw;

namespace {

core::HwSwModel
quickModel()
{
    core::Dataset ds;
    Rng rng(1);
    for (const char *app : {"a", "b"}) {
        for (int i = 0; i < 60; ++i) {
            core::ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[7] = std::exp(rng.nextGaussian() + 4.0);
            r.vars[core::kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 2.0 * r.vars[6] +
                     4.0 / r.vars[core::kNumSw];
            ds.add(r);
        }
    }
    core::ModelSpec s;
    s.genes[6] = 2;
    s.genes[7] = 4;
    s.genes[core::kNumSw] = 3;
    s.interactions = {{6, static_cast<std::uint16_t>(core::kNumSw)}};
    s.normalize();
    core::HwSwModel model;
    model.fit(s, ds);
    return model;
}

serve::FeatureVector
randomRow(Rng &rng)
{
    serve::FeatureVector row{};
    row[6] = rng.nextUniform(0.1, 0.6);
    row[7] = std::exp(rng.nextGaussian() + 4.0);
    row[core::kNumSw] = 1 << rng.nextInt(4);
    return row;
}

struct LoadResult
{
    std::uint64_t requests = 0;
    std::uint64_t predictions = 0;
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
    std::uint64_t wrong = 0; ///< answers that mismatched the model
    std::uint64_t swaps = 0;
    double seconds = 0.0;
    std::vector<double> requestLatency; ///< seconds, all clients
};

/**
 * Closed-loop load: each of @p num_clients threads keeps exactly one
 * batch request outstanding for @p seconds. When @p hot_swap is set,
 * the main thread republishes/rolls back the model for the whole
 * duration. When @p verify is set, every returned value is compared
 * bit-exactly against the local model's prediction (every published
 * version in this harness carries the same weights).
 */
LoadResult
runLoad(serve::Server &server,
        std::shared_ptr<serve::ModelRegistry> registry,
        const core::HwSwModel &model, int num_clients,
        std::size_t batch, double seconds, bool hot_swap,
        serve::ClientOptions copts = {},
        const core::HwSwModel *verify = nullptr)
{
    std::atomic<bool> go{true};
    std::atomic<std::uint64_t> requests{0}, shed{0}, failed{0},
        wrong{0};
    std::vector<std::vector<double>> latencies(num_clients);

    std::vector<std::thread> clients;
    for (int t = 0; t < num_clients; ++t) {
        clients.emplace_back([&, t] {
            serve::Client c("127.0.0.1", server.port(), copts);
            Rng rng(100 + t);
            std::vector<serve::FeatureVector> rows;
            std::vector<double> expected;
            for (std::size_t i = 0; i < batch; ++i) {
                rows.push_back(randomRow(rng));
                if (verify) {
                    core::ProfileRecord rec;
                    rec.vars = rows.back();
                    rec.perf = 1.0;
                    expected.push_back(verify->predict(rec));
                }
            }
            while (go.load(std::memory_order_relaxed)) {
                const auto t0 = std::chrono::steady_clock::now();
                const serve::ClientPrediction out =
                    c.predictBatch("default", rows);
                const auto t1 = std::chrono::steady_clock::now();
                if (out.ok && out.values.size() == batch) {
                    requests.fetch_add(1, std::memory_order_relaxed);
                    latencies[t].push_back(
                        std::chrono::duration<double>(t1 - t0)
                            .count());
                    if (verify)
                        for (std::size_t i = 0; i < batch; ++i)
                            if (out.values[i] != expected[i])
                                wrong.fetch_add(
                                    1, std::memory_order_relaxed);
                } else if (out.shed) {
                    shed.fetch_add(1, std::memory_order_relaxed);
                } else {
                    failed.fetch_add(1, std::memory_order_relaxed);
                }
            }
            c.quit();
        });
    }

    LoadResult res;
    const std::string text = core::saveModelToString(model);
    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    if (hot_swap) {
        serve::Client admin("127.0.0.1", server.port());
        while (elapsed() < seconds) {
            std::string err;
            if (res.swaps % 3 == 2) {
                const auto active =
                    registry->lookup("default")->version;
                if (active > 1 &&
                    admin.swapModel("default", active - 1))
                    ++res.swaps;
            } else if (admin.loadModel("default", text, &err)) {
                ++res.swaps;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        admin.quit();
    } else {
        while (elapsed() < seconds)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    go.store(false, std::memory_order_relaxed);
    for (auto &t : clients)
        t.join();
    res.seconds = elapsed();

    res.requests = requests.load();
    res.predictions = res.requests * batch;
    res.shed = shed.load();
    res.failed = failed.load();
    res.wrong = wrong.load();
    for (auto &v : latencies)
        res.requestLatency.insert(res.requestLatency.end(),
                                  v.begin(), v.end());
    std::sort(res.requestLatency.begin(), res.requestLatency.end());
    return res;
}

double
pct(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

serve::Server *g_server = nullptr;

void
BM_ScalarPredictRoundTrip(benchmark::State &state)
{
    serve::Client c("127.0.0.1", g_server->port());
    Rng rng(7);
    const serve::FeatureVector row = randomRow(rng);
    for (auto _ : state) {
        const auto out = c.predict("default", row);
        benchmark::DoNotOptimize(out.values);
    }
    c.quit();
}
BENCHMARK(BM_ScalarPredictRoundTrip)->Unit(benchmark::kMicrosecond);

} // namespace

int
main(int argc, char **argv)
{
    const core::HwSwModel model = quickModel();
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->publish("default", model, "bench");

    serve::ServerOptions opts;
    opts.engine.threads = 2;
    serve::Server server(registry, opts);
    server.start();
    g_server = &server;

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    const unsigned hw = std::max(1u,
                                 std::thread::hardware_concurrency());
    bench::section("closed-loop serving throughput");
    std::printf("loopback TCP, batch=16, duration ~2s per row, "
                "engine threads=2, hw threads=%u\n", hw);

    TextTable t;
    t.header({"clients", "swap", "pred/s", "req p50", "req p95",
              "req p99", "shed", "failed", "swaps"});
    bool hot_swap_clean = true;
    std::uint64_t hot_swap_count = 0;
    for (const int clients : {1, 2, 4}) {
        for (const bool hot : {false, true}) {
            const LoadResult r = runLoad(server, registry, model,
                                         clients, 16, 2.0, hot);
            auto us = [&](double q) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.1fus",
                              pct(r.requestLatency, q) * 1e6);
                return std::string(buf);
            };
            t.row({std::to_string(clients), hot ? "hot" : "-",
                   std::to_string(static_cast<std::uint64_t>(
                       static_cast<double>(r.predictions) /
                       r.seconds)),
                   us(0.50), us(0.95), us(0.99),
                   std::to_string(r.shed),
                   std::to_string(r.failed),
                   std::to_string(r.swaps)});
            if (hot) {
                hot_swap_count += r.swaps;
                if (r.failed != 0)
                    hot_swap_clean = false;
            }
        }
    }
    std::printf("%s", t.render().c_str());

    bench::section("server-side per-verb latency");
    std::printf("%s", server.statsReport().c_str());

    bench::section("hot-swap acceptance");
    std::printf("model swaps overlapped with live traffic: %llu\n",
                static_cast<unsigned long long>(hot_swap_count));
    std::printf("failed in-flight requests during swaps: %s\n",
                hot_swap_clean ? "0 (PASS)" : "NONZERO (FAIL)");

    bench::section("fault-injection acceptance");
    // Baseline vs the same closed loop under ~1% socket faults:
    // short reads/writes force the resume paths, rare read errors
    // kill connections mid-request. Retries must keep every answer
    // bit-exact and the throughput cost inside 15%.
    const LoadResult base = runLoad(server, registry, model, 2, 16,
                                    2.5, false, {}, &model);
    auto &faults = fault::FaultRegistry::instance();
    faults.armSpec("proto.read.short:p=0.01");
    faults.armSpec("proto.write.short:p=0.01");
    faults.armSpec("proto.read.err:p=0.002,errno=104");
    faults.setEnabled(true);
    serve::ClientOptions copts;
    copts.retry.maxAttempts = 4;
    copts.retry.initialBackoff = 0.0002;
    copts.retry.maxBackoff = 0.002;
    const LoadResult faulted = runLoad(server, registry, model, 2,
                                       16, 2.5, false, copts, &model);
    faults.setEnabled(false);
    faults.reset();

    const double base_rate =
        static_cast<double>(base.predictions) / base.seconds;
    const double fault_rate =
        static_cast<double>(faulted.predictions) / faulted.seconds;
    const double degradation =
        base_rate > 0.0 ? 1.0 - fault_rate / base_rate : 1.0;
    std::printf("baseline: %.0f pred/s, faulted: %.0f pred/s "
                "(%.1f%% degradation)\n",
                base_rate, fault_rate, degradation * 100.0);
    std::printf("faulted requests: %llu ok, %llu failed, "
                "%llu wrong answers\n",
                static_cast<unsigned long long>(faulted.requests),
                static_cast<unsigned long long>(faulted.failed),
                static_cast<unsigned long long>(faulted.wrong));
    const bool fault_clean =
        faulted.wrong == 0 && base.wrong == 0 && degradation < 0.15;
    std::printf("wrong answers under faults: %s\n",
                faulted.wrong == 0 ? "0 (PASS)" : "NONZERO (FAIL)");
    std::printf("throughput degradation < 15%%: %s\n",
                degradation < 0.15 ? "PASS" : "FAIL");

    server.stop();
    return hot_swap_clean && fault_clean ? 0 : 1;
}
