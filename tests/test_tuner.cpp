// Tests for coordinated hardware-software tuning (Figure 16).
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "spmv/matgen.hpp"
#include "spmv/tuner.hpp"

namespace hwsw::spmv {
namespace {

/** One tuned matrix shared across tests (tuning is not free). */
const TuneOutcome &
sharedOutcome()
{
    static const TuneOutcome outcome = [] {
        const CsrMatrix csr =
            generateMatrix(matrixInfo("raefsky3"), 0.12, 5);
        TunerOptions opts;
        opts.trainingSamples = 120;
        opts.validationSamples = 40;
        opts.sim.maxAccesses = 80 * 1000;
        CoordinatedTuner tuner(csr, opts);
        return tuner.tune();
    }();
    return outcome;
}

TEST(Tuner, BaselineIsUnblocked)
{
    const TuneOutcome &o = sharedOutcome();
    EXPECT_EQ(o.baseline.br, 1);
    EXPECT_EQ(o.baseline.bc, 1);
    EXPECT_GT(o.baseline.mflops, 0.0);
}

TEST(Tuner, AppTuningKeepsBaselineCache)
{
    const TuneOutcome &o = sharedOutcome();
    EXPECT_EQ(o.appTuned.cache, o.baseline.cache);
    EXPECT_GE(o.appTuned.mflops, o.baseline.mflops);
}

TEST(Tuner, ArchTuningKeepsUnblockedCode)
{
    const TuneOutcome &o = sharedOutcome();
    EXPECT_EQ(o.archTuned.br, 1);
    EXPECT_EQ(o.archTuned.bc, 1);
    EXPECT_GE(o.archTuned.mflops, o.baseline.mflops);
}

TEST(Tuner, CoordinatedBeatsBothSingleStrategies)
{
    // Figure 16(a): coordinated > arch-only > app-only > baseline.
    const TuneOutcome &o = sharedOutcome();
    EXPECT_GE(o.coordinated.mflops, o.appTuned.mflops * 0.99);
    EXPECT_GE(o.coordinated.mflops, o.archTuned.mflops * 0.99);
    EXPECT_GT(o.coordinated.mflops, o.baseline.mflops * 1.5);
}

TEST(Tuner, AppTuningReducesEnergyArchTuningDoesNot)
{
    // Figure 16(b): blocking reduces nJ/Flop; architecture-only
    // tuning does not reduce it.
    const TuneOutcome &o = sharedOutcome();
    EXPECT_LT(o.appTuned.nJPerFlop, o.baseline.nJPerFlop);
    EXPECT_GT(o.archTuned.nJPerFlop, o.appTuned.nJPerFlop);
}

TEST(Tuner, ModelMetricsAreReasonable)
{
    const TuneOutcome &o = sharedOutcome();
    EXPECT_LT(o.modelMetrics.medianAbsPctError, 0.15);
    EXPECT_GT(o.modelMetrics.spearman, 0.85);
}

TEST(Tuner, VariantAccessorsValidateRange)
{
    const CsrMatrix csr = generateMatrix(matrixInfo("memplus"), 0.05, 2);
    TunerOptions opts;
    opts.trainingSamples = 60;
    opts.validationSamples = 30;
    opts.sim.maxAccesses = 40 * 1000;
    CoordinatedTuner tuner(csr, opts);
    EXPECT_EQ(tuner.variant(1, 1).br, 1);
    EXPECT_EQ(tuner.variant(8, 8).bc, 8);
    EXPECT_THROW(tuner.variant(0, 1), FatalError);
    EXPECT_THROW(tuner.variant(1, 9), FatalError);
}

TEST(Tuner, Raefsky3PrefersLargeBlockRows)
{
    // Figure 12: 8 block rows maximize raefsky3 performance; the
    // coordinated choice should use rows that are a multiple of 4.
    const TuneOutcome &o = sharedOutcome();
    EXPECT_EQ(o.coordinated.br % 4, 0);
}

} // namespace
} // namespace hwsw::spmv
