// Tests for the integrated-space sampler.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "core/sampler.hpp"

namespace hwsw::core {
namespace {

const SpaceSampler &
sharedSampler()
{
    static SpaceSampler sampler = [] {
        SamplerOptions opts;
        opts.shardLength = 4096;
        opts.shardsPerApp = 6;
        return SpaceSampler(wl::makeSuite(), opts);
    }();
    return sampler;
}

TEST(SpaceSampler, ProfilesAllAppsAndShards)
{
    const SpaceSampler &s = sharedSampler();
    EXPECT_EQ(s.numApps(), 7u);
    for (std::size_t a = 0; a < s.numApps(); ++a) {
        EXPECT_EQ(s.profiles(a).size(), 6u);
        EXPECT_EQ(s.signatures(a).size(), 6u);
        for (const auto &p : s.profiles(a))
            EXPECT_EQ(p.app, s.app(a).name);
    }
}

TEST(SpaceSampler, ShardCpiPositive)
{
    const SpaceSampler &s = sharedSampler();
    Rng rng(1);
    for (int i = 0; i < 20; ++i) {
        const auto cfg = uarch::UarchConfig::randomSample(rng);
        const double cpi = s.shardCpi(i % 7, i % 6, cfg);
        EXPECT_GT(cpi, 0.1);
        EXPECT_LT(cpi, 100.0);
    }
}

TEST(SpaceSampler, AppCpiIsMeanOfShards)
{
    const SpaceSampler &s = sharedSampler();
    const uarch::UarchConfig cfg;
    double acc = 0;
    for (std::size_t sh = 0; sh < 6; ++sh)
        acc += s.shardCpi(0, sh, cfg);
    EXPECT_NEAR(s.appCpi(0, cfg), acc / 6.0, 1e-12);
}

TEST(SpaceSampler, RecordCombinesProfileConfigAndCpi)
{
    const SpaceSampler &s = sharedSampler();
    uarch::UarchConfig cfg;
    cfg.width = 8;
    const ProfileRecord r = s.record(2, 3, cfg);
    EXPECT_EQ(r.app, s.app(2).name);
    EXPECT_EQ(r.shardIndex, 3u);
    EXPECT_DOUBLE_EQ(r.vars[kNumSw], 8.0);
    EXPECT_NEAR(r.perf, s.shardCpi(2, 3, cfg), 1e-12);
}

TEST(SpaceSampler, SampleProducesRequestedCounts)
{
    const SpaceSampler &s = sharedSampler();
    const Dataset ds = s.sample(10, 42);
    EXPECT_EQ(ds.size(), 70u);
    EXPECT_EQ(ds.appNames().size(), 7u);
    for (const auto &app : ds.appNames())
        EXPECT_EQ(ds.indicesForApp(app).size(), 10u);
}

TEST(SpaceSampler, SampleDeterministicInSeed)
{
    const SpaceSampler &s = sharedSampler();
    const Dataset a = s.sample(5, 9);
    const Dataset b = s.sample(5, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].app, b[i].app);
        EXPECT_DOUBLE_EQ(a[i].perf, b[i].perf);
    }
    const Dataset c = s.sample(5, 10);
    bool differs = false;
    for (std::size_t i = 0; i < a.size() && !differs; ++i)
        differs = a[i].perf != c[i].perf;
    EXPECT_TRUE(differs);
}

TEST(SpaceSampler, SampleAppsRestricts)
{
    const SpaceSampler &s = sharedSampler();
    std::vector<std::size_t> apps = {1, 3};
    const Dataset ds = s.sampleApps(apps, 4, 7);
    EXPECT_EQ(ds.size(), 8u);
    EXPECT_EQ(ds.appNames().size(), 2u);
}

TEST(SpaceSampler, EmptyAppListIsFatal)
{
    SamplerOptions opts;
    std::vector<wl::AppSpec> none;
    EXPECT_THROW(SpaceSampler(none, opts), FatalError);
}

} // namespace
} // namespace hwsw::core
