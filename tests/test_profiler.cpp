// Unit tests for the Table 1 shard profiler, including hand-crafted
// streams with known re-use distances.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "profiler/profiler.hpp"

namespace hwsw::prof {
namespace {

using wl::MicroOp;
using wl::OpClass;

MicroOp
op(OpClass cls, std::uint64_t addr = 0, std::uint64_t pc = 0x1000)
{
    MicroOp o;
    o.cls = cls;
    o.addr = addr;
    o.pc = pc;
    return o;
}

TEST(Profiler, InstructionMixCounts)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 4; ++i)
        ops.push_back(op(OpClass::IntAlu));
    ops.push_back(op(OpClass::FpAlu));
    ops.push_back(op(OpClass::FpMulDiv));
    ops.push_back(op(OpClass::IntMulDiv));
    ops.push_back(op(OpClass::Load, 0x100));
    ops.push_back(op(OpClass::Store, 0x200));
    MicroOp br = op(OpClass::Branch);
    br.taken = true;
    ops.push_back(br);

    const ShardProfile p = profileShard(ops, "test", 3);
    EXPECT_EQ(p.app, "test");
    EXPECT_EQ(p.shardIndex, 3u);
    EXPECT_EQ(p.numOps, 10u);
    EXPECT_DOUBLE_EQ(p.intAluFrac, 0.4);
    EXPECT_DOUBLE_EQ(p.fpAluFrac, 0.1);
    EXPECT_DOUBLE_EQ(p.fpMulFrac, 0.1);
    EXPECT_DOUBLE_EQ(p.intMulFrac, 0.1);
    EXPECT_DOUBLE_EQ(p.memFrac, 0.2);
    EXPECT_DOUBLE_EQ(p.ctrlFrac, 0.1);
    EXPECT_DOUBLE_EQ(p.takenFrac, 0.1);
    EXPECT_DOUBLE_EQ(p.avgBasicBlock, 10.0);
}

TEST(Profiler, ReuseDistanceHandCrafted)
{
    // Accesses to the same 64B block at op indices 1 and 5: one
    // re-use of distance 4. A second block touched once: no re-use.
    std::vector<MicroOp> ops;
    ops.push_back(op(OpClass::IntAlu));
    ops.push_back(op(OpClass::Load, 0x0));    // block A, index 1
    ops.push_back(op(OpClass::IntAlu));
    ops.push_back(op(OpClass::Load, 0x1000)); // block B
    ops.push_back(op(OpClass::IntAlu));
    ops.push_back(op(OpClass::Load, 0x20));   // block A again, index 5
    const ShardProfile p = profileShard(ops, "x", 0);
    EXPECT_DOUBLE_EQ(p.avgDReuse, 4.0);
    EXPECT_DOUBLE_EQ(p.sumDReuse, 4.0);
}

TEST(Profiler, ReuseDistanceRespectsBlockGranularity)
{
    // 0x0 and 0x40 are different 64B blocks but the same 256B block.
    std::vector<MicroOp> ops;
    ops.push_back(op(OpClass::Load, 0x0));
    ops.push_back(op(OpClass::Load, 0x40));
    const ShardProfile p64 = profileShard(ops, "x", 0, 64);
    EXPECT_DOUBLE_EQ(p64.avgDReuse, 0.0); // distinct blocks: no reuse
    const ShardProfile p256 = profileShard(ops, "x", 0, 256);
    EXPECT_DOUBLE_EQ(p256.avgDReuse, 1.0);
}

TEST(Profiler, InstructionReuseTracksPc)
{
    // Same 64B code block revisited after 2 ops.
    std::vector<MicroOp> ops;
    ops.push_back(op(OpClass::IntAlu, 0, 0x1000));
    ops.push_back(op(OpClass::IntAlu, 0, 0x2000));
    ops.push_back(op(OpClass::IntAlu, 0, 0x1004));
    const ShardProfile p = profileShard(ops, "x", 0);
    EXPECT_DOUBLE_EQ(p.avgIReuse, 2.0);
}

TEST(Profiler, ProducerConsumerDistances)
{
    std::vector<MicroOp> ops;
    ops.push_back(op(OpClass::FpAlu));
    MicroOp consumer = op(OpClass::FpAlu);
    consumer.depDist = 1;
    consumer.producerCls = OpClass::FpAlu;
    ops.push_back(consumer);
    MicroOp c2 = op(OpClass::IntAlu);
    c2.depDist = 2;
    c2.producerCls = OpClass::FpAlu;
    ops.push_back(c2);
    MicroOp c3 = op(OpClass::IntAlu);
    c3.depDist = 3;
    c3.producerCls = OpClass::IntMulDiv;
    ops.push_back(c3);

    const ShardProfile p = profileShard(ops, "x", 0);
    EXPECT_DOUBLE_EQ(p.fpAluConsumerDist, 1.5); // (1+2)/2
    EXPECT_DOUBLE_EQ(p.intMulConsumerDist, 3.0);
    EXPECT_DOUBLE_EQ(p.fpMulConsumerDist, 0.0); // none observed
}

TEST(Profiler, EmptyShardIsFatal)
{
    std::vector<MicroOp> ops;
    EXPECT_THROW(profileShard(ops, "x", 0), FatalError);
}

TEST(Profiler, NonPowerOfTwoBlockIsFatal)
{
    std::vector<MicroOp> ops = {op(OpClass::IntAlu)};
    EXPECT_THROW(profileShard(ops, "x", 0, 100), FatalError);
}

TEST(Profiler, FeatureVectorMatchesFields)
{
    std::vector<MicroOp> ops = {op(OpClass::Load, 0x10),
                                op(OpClass::IntAlu)};
    const ShardProfile p = profileShard(ops, "x", 0);
    const auto f = p.features();
    EXPECT_DOUBLE_EQ(f[6], p.memFrac);
    EXPECT_DOUBLE_EQ(f[7], p.avgDReuse);
    EXPECT_DOUBLE_EQ(f[12], p.avgBasicBlock);
    EXPECT_EQ(ShardProfile::featureNames().size(), kNumSwFeatures);
}

TEST(Profiler, WarmProfilingCarriesReuseAcrossShards)
{
    // Block A touched in shard 0 and re-touched early in shard 1:
    // warm profiling sees the cross-shard re-use, cold does not.
    std::vector<std::vector<MicroOp>> shards(2);
    shards[0].push_back(op(OpClass::Load, 0x0));
    shards[0].push_back(op(OpClass::IntAlu));
    shards[1].push_back(op(OpClass::Load, 0x8));
    shards[1].push_back(op(OpClass::IntAlu));

    const auto warm = profileShards(shards, "x");
    ASSERT_EQ(warm.size(), 2u);
    EXPECT_DOUBLE_EQ(warm[1].avgDReuse, 2.0);

    const auto cold = profileShard(shards[1], "x", 1);
    EXPECT_DOUBLE_EQ(cold.avgDReuse, 0.0);
}

TEST(Profiler, MeanFeaturesAverages)
{
    std::vector<MicroOp> a = {op(OpClass::IntAlu), op(OpClass::IntAlu)};
    std::vector<MicroOp> b = {op(OpClass::Load, 0x10),
                              op(OpClass::Load, 0x18)};
    std::vector<ShardProfile> ps = {profileShard(a, "x", 0),
                                    profileShard(b, "x", 1)};
    const auto m = meanFeatures(ps);
    EXPECT_DOUBLE_EQ(m[5], 0.5); // intAluFrac mean
    EXPECT_DOUBLE_EQ(m[6], 0.5); // memFrac mean
}

} // namespace
} // namespace hwsw::prof
