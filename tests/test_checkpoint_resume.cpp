// Crash-safe checkpoint tests: RNG state snapshots, checkpoint text
// round trips, atomic file replacement under injected write/rename
// faults, and the headline guarantee — a genetic search resumed from
// a mid-run checkpoint reproduces the uninterrupted run's best
// model, final population, and history bit-identically. Part of the
// tier15_fault aggregate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "common/assert.hpp"
#include "common/fault/fault.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/genetic.hpp"

namespace hwsw::core {
namespace {

class CheckpointResume : public ::testing::Test
{
  protected:
    void SetUp() override { clean(); }
    void TearDown() override
    {
        clean();
        std::remove(path().c_str());
    }

    static void clean()
    {
        fault::FaultRegistry::instance().reset();
        fault::FaultRegistry::instance().setEnabled(false);
    }

    static std::string path()
    {
        return testing::TempDir() + "hwsw_test_checkpoint.txt";
    }
};

/** Two-app dataset a tiny GA separates in a few generations. */
Dataset
searchData(std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"a1", "a2"}) {
        for (int i = 0; i < 60; ++i) {
            ProfileRecord r;
            r.app = app;
            r.vars[1] = (app[1] == '1' ? 0.05 : 0.15) +
                rng.nextUniform(0.0, 0.1);
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 4.0 * r.vars[1] + 2.0 * r.vars[6] +
                3.0 / r.vars[kNumSw];
            ds.add(r);
        }
    }
    return ds;
}

GaOptions
searchOpts()
{
    GaOptions o;
    o.populationSize = 10;
    o.generations = 5;
    o.numThreads = 1;
    o.seed = 5;
    return o;
}

SearchCheckpoint
sampleCheckpoint()
{
    SearchCheckpoint cp;
    cp.nextGeneration = 7;

    Rng rng(3);
    rng.nextGaussian(); // leave a cached Box-Muller variate live
    cp.rng = rng.state();

    ModelSpec s1;
    s1.genes[0] = 1;
    s1.genes[5] = 4;
    s1.interactions = {{0, 5}};
    s1.normalize();
    cp.population.push_back(s1);
    cp.population.push_back(ModelSpec::random(rng, 0.4, 6));

    GenerationStats g;
    g.generation = 0;
    g.bestFitness = 1.0 / 3.0;
    g.meanFitness = 0.75;
    g.bestSumMedianError = 1e-3;
    g.wallSeconds = 2.5;
    g.cacheHits = 3;
    g.cacheMisses = 17;
    cp.history.push_back(g);
    g.generation = 1;
    g.bestFitness = 0.25;
    cp.history.push_back(g);
    return cp;
}

TEST_F(CheckpointResume, RngStateResumesMidStream)
{
    Rng original(42);
    original.nextGaussian(); // odd draw count: cached variate live
    original.nextDouble();
    original.nextInt(100);

    const RngState snap = original.state();
    Rng restored(7); // different seed; state overrides it entirely
    restored.setState(snap);
    EXPECT_EQ(restored.state(), snap);

    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(original(), restored());
        EXPECT_EQ(original.nextGaussian(), restored.nextGaussian());
        EXPECT_EQ(original.nextDouble(), restored.nextDouble());
    }
}

TEST_F(CheckpointResume, CheckpointTextRoundTripsExactly)
{
    const SearchCheckpoint cp = sampleCheckpoint();
    const std::string text = saveCheckpointToString(cp);
    const SearchCheckpoint back = loadCheckpointFromString(text);

    EXPECT_EQ(back.nextGeneration, cp.nextGeneration);
    EXPECT_EQ(back.rng, cp.rng);
    ASSERT_EQ(back.population.size(), cp.population.size());
    for (std::size_t i = 0; i < cp.population.size(); ++i)
        EXPECT_EQ(back.population[i], cp.population[i]);
    ASSERT_EQ(back.history.size(), cp.history.size());
    for (std::size_t i = 0; i < cp.history.size(); ++i) {
        EXPECT_EQ(back.history[i].generation,
                  cp.history[i].generation);
        EXPECT_EQ(back.history[i].bestFitness,
                  cp.history[i].bestFitness);
        EXPECT_EQ(back.history[i].meanFitness,
                  cp.history[i].meanFitness);
        EXPECT_EQ(back.history[i].bestSumMedianError,
                  cp.history[i].bestSumMedianError);
        EXPECT_EQ(back.history[i].cacheHits, cp.history[i].cacheHits);
    }
}

TEST_F(CheckpointResume, MalformedCheckpointThrows)
{
    EXPECT_THROW(loadCheckpointFromString("not a checkpoint"),
                 FatalError);

    // Truncation anywhere before the sentinel is detected.
    const std::string text =
        saveCheckpointToString(sampleCheckpoint());
    const std::size_t end = text.rfind("end");
    ASSERT_NE(end, std::string::npos);
    EXPECT_THROW(loadCheckpointFromString(text.substr(0, end)),
                 FatalError);
    EXPECT_THROW(loadCheckpointFromString(text.substr(0, end / 2)),
                 FatalError);
}

TEST_F(CheckpointResume, MissingFileLoadsAsNullopt)
{
    std::string err;
    const auto cp =
        loadCheckpointFromFile(path() + ".does-not-exist", &err);
    EXPECT_FALSE(cp.has_value());
    EXPECT_FALSE(err.empty());
}

TEST_F(CheckpointResume, CrashedSaveKeepsPreviousCheckpoint)
{
    SearchCheckpoint first = sampleCheckpoint();
    first.nextGeneration = 3;
    ASSERT_TRUE(saveCheckpointToFile(first, path()));

    SearchCheckpoint second = sampleCheckpoint();
    second.nextGeneration = 4;

    // A crash at rename time (new contents written, replace lost)
    // and a torn data write must both leave the old file intact.
    for (const char *spec :
         {"fsio.rename.drop:once", "fsio.write.torn:once"}) {
        std::string err;
        ASSERT_TRUE(fault::FaultRegistry::instance().armSpec(spec,
                                                             &err))
            << err;
        fault::FaultRegistry::instance().setEnabled(true);
        EXPECT_FALSE(saveCheckpointToFile(second, path(), &err))
            << spec;
        EXPECT_FALSE(err.empty());
        clean();

        const auto back = loadCheckpointFromFile(path());
        ASSERT_TRUE(back.has_value()) << spec;
        EXPECT_EQ(back->nextGeneration, 3u) << spec;
    }

    // With faults gone the save replaces the file normally.
    ASSERT_TRUE(saveCheckpointToFile(second, path()));
    EXPECT_EQ(loadCheckpointFromFile(path())->nextGeneration, 4u);
}

TEST_F(CheckpointResume, ResumeReproducesRunBitIdentically)
{
    // The uninterrupted reference run.
    const Dataset data = searchData(11);
    const GaOptions opts = searchOpts();
    GeneticSearch full(data, opts);
    const GaResult a = full.run();
    ASSERT_EQ(a.history.size(), opts.generations);

    // A "crashed" run: same search, killed after generation 1 (its
    // generations knob only bounds how far it got; the bred stream
    // is identical while both runs are alive). The checkpoint on
    // disk is what the crash left behind.
    GaOptions crashed = opts;
    crashed.generations = 3;
    crashed.checkpointPath = path();
    GeneticSearch partial(data, crashed);
    (void)partial.run();

    const auto cp = loadCheckpointFromFile(path());
    ASSERT_TRUE(cp.has_value());
    EXPECT_EQ(cp->nextGeneration, 2u);
    ASSERT_EQ(cp->population.size(), opts.populationSize);
    ASSERT_EQ(cp->history.size(), 2u);

    // Restart: a fresh search over the same data and options picks
    // up from the checkpoint and must land exactly where the
    // uninterrupted run did.
    GeneticSearch resumed(data, opts);
    const GaResult b = resumed.resume(*cp);

    EXPECT_EQ(b.best.spec, a.best.spec);
    EXPECT_EQ(b.best.fitness, a.best.fitness);
    EXPECT_EQ(b.best.sumMedianError, a.best.sumMedianError);

    ASSERT_EQ(b.population.size(), a.population.size());
    for (std::size_t i = 0; i < a.population.size(); ++i) {
        EXPECT_EQ(b.population[i].spec, a.population[i].spec) << i;
        EXPECT_EQ(b.population[i].fitness, a.population[i].fitness)
            << i;
    }

    // History covers all generations; every deterministic field
    // matches (wall times and cache counters legitimately differ —
    // the resumed run starts with a cold memo cache).
    ASSERT_EQ(b.history.size(), a.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_EQ(b.history[i].generation, a.history[i].generation);
        EXPECT_EQ(b.history[i].bestFitness, a.history[i].bestFitness)
            << i;
        EXPECT_EQ(b.history[i].meanFitness, a.history[i].meanFitness)
            << i;
        EXPECT_EQ(b.history[i].bestSumMedianError,
                  a.history[i].bestSumMedianError)
            << i;
    }
}

TEST_F(CheckpointResume, ResumeValidatesCheckpointShape)
{
    const Dataset data = searchData(11);
    GeneticSearch search(data, searchOpts());

    SearchCheckpoint bad;
    bad.nextGeneration = 1;
    bad.population.resize(3); // wrong population size
    EXPECT_THROW(search.resume(bad), FatalError);
}

TEST_F(CheckpointResume, ResumeTreatsCheckpointAtFinalGenerationAsComplete)
{
    const Dataset data = searchData(11);
    const GaOptions opts = searchOpts();

    GaOptions writer_opts = opts;
    writer_opts.checkpointPath = path();
    GeneticSearch writer(data, writer_opts);
    (void)writer.run();

    // The checkpoint a finished run leaves behind sits at its last
    // breeding boundary.
    const auto cp = loadCheckpointFromFile(path());
    ASSERT_TRUE(cp.has_value());
    EXPECT_EQ(cp->nextGeneration, opts.generations - 1);

    // Re-running `train --resume` with --generations at (or below)
    // the checkpoint's next generation hands resume() a run with
    // nothing left to do. That is completion, not an error: the
    // stored population is re-scored and reported.
    GaOptions fewer = opts;
    fewer.generations = cp->nextGeneration;
    GeneticSearch resumed(data, fewer);
    const GaResult b = resumed.resume(*cp);

    EXPECT_EQ(b.history.size(), cp->history.size());
    ASSERT_EQ(b.population.size(), opts.populationSize);
    for (const ScoredSpec &s : b.population)
        EXPECT_TRUE(std::isfinite(s.fitness));
    EXPECT_EQ(b.best.fitness, b.population.front().fitness);
    EXPECT_LE(b.best.fitness, b.population.back().fitness);
}

} // namespace
} // namespace hwsw::core
