// Tests for the Table 5 cache architecture space.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <set>

#include "spmv/machine.hpp"

namespace hwsw::spmv {
namespace {

TEST(SpmvCacheConfig, DefaultsAreOnGrid)
{
    const SpmvCacheConfig c;
    EXPECT_EQ(c.lineBytes, 32);
    EXPECT_EQ(c.dsizeKB, 32);
    EXPECT_EQ(c.dways, 2);
}

TEST(SpmvCacheConfig, LevelsMatchTable5)
{
    const auto &levels = SpmvCacheConfig::levelsPerDim();
    EXPECT_EQ(levels[0], 4); // line 16..128
    EXPECT_EQ(levels[1], 7); // dsize 4..256
    EXPECT_EQ(levels[2], 4); // ways 1..8
    EXPECT_EQ(levels[3], 3); // repl
    EXPECT_EQ(levels[4], 7); // isize 2..128
    EXPECT_EQ(levels[5], 4);
    EXPECT_EQ(levels[6], 3);
}

TEST(SpmvCacheConfig, FromIndicesExtremes)
{
    std::array<int, kNumCacheFeatures> lo{}, hi{};
    const auto &levels = SpmvCacheConfig::levelsPerDim();
    for (std::size_t d = 0; d < kNumCacheFeatures; ++d)
        hi[d] = levels[d] - 1;
    const SpmvCacheConfig weak = SpmvCacheConfig::fromIndices(lo);
    const SpmvCacheConfig strong = SpmvCacheConfig::fromIndices(hi);
    EXPECT_EQ(weak.lineBytes, 16);
    EXPECT_EQ(strong.lineBytes, 128);
    EXPECT_EQ(weak.dsizeKB, 4);
    EXPECT_EQ(strong.dsizeKB, 256);
    EXPECT_EQ(weak.isizeKB, 2);
    EXPECT_EQ(strong.isizeKB, 128);
    EXPECT_EQ(weak.drepl, uarch::ReplPolicy::LRU);
    EXPECT_EQ(strong.drepl, uarch::ReplPolicy::RND);
}

TEST(SpmvCacheConfig, FromIndicesRejectsOutOfRange)
{
    std::array<int, kNumCacheFeatures> idx{};
    idx[1] = 7;
    EXPECT_THROW(SpmvCacheConfig::fromIndices(idx), FatalError);
}

TEST(SpmvCacheConfig, RandomSampleCoversSpace)
{
    Rng rng(3);
    std::set<int> lines, dsizes;
    std::set<int> repls;
    for (int i = 0; i < 400; ++i) {
        const SpmvCacheConfig c = SpmvCacheConfig::randomSample(rng);
        lines.insert(c.lineBytes);
        dsizes.insert(c.dsizeKB);
        repls.insert(static_cast<int>(c.drepl));
    }
    EXPECT_EQ(lines.size(), 4u);
    EXPECT_EQ(dsizes.size(), 7u);
    EXPECT_EQ(repls.size(), 3u);
}

TEST(SpmvCacheConfig, FeatureVectorEncodesLogs)
{
    SpmvCacheConfig c;
    c.lineBytes = 64;
    c.dsizeKB = 128;
    c.dways = 4;
    c.drepl = uarch::ReplPolicy::NMRU;
    const auto f = c.features();
    EXPECT_DOUBLE_EQ(f[0], 6.0); // log2(64)
    EXPECT_DOUBLE_EQ(f[1], 7.0); // log2(128)
    EXPECT_DOUBLE_EQ(f[2], 2.0); // log2(4)
    EXPECT_DOUBLE_EQ(f[3], 1.0); // NMRU
    EXPECT_EQ(SpmvCacheConfig::featureNames().size(),
              kNumCacheFeatures);
}

TEST(SpmvCacheConfig, CacheGeometriesAreConsistent)
{
    SpmvCacheConfig c;
    c.dsizeKB = 64;
    c.lineBytes = 32;
    c.dways = 4;
    const uarch::CacheConfig d = c.dcache();
    EXPECT_EQ(d.sizeBytes, 64u * 1024u);
    EXPECT_EQ(d.lineBytes, 32u);
    EXPECT_EQ(d.ways, 4u);
    // The geometry is actually constructible.
    uarch::Cache cache(d);
    EXPECT_EQ(cache.numSets(), 64u * 1024u / 32u / 4u);
    const uarch::CacheConfig i = c.icache();
    uarch::Cache icache(i);
    EXPECT_GT(icache.numSets(), 0u);
}

TEST(SpmvCacheConfig, AllGridGeometriesConstructible)
{
    // Property sweep: every point on the Table 5 grid must yield
    // valid cache geometries (sets a power of two, etc.).
    const auto &levels = SpmvCacheConfig::levelsPerDim();
    std::array<int, kNumCacheFeatures> idx{};
    for (;;) {
        const SpmvCacheConfig c = SpmvCacheConfig::fromIndices(idx);
        EXPECT_NO_THROW({
            uarch::Cache d(c.dcache());
            uarch::Cache i(c.icache());
        });
        std::size_t d = 0;
        while (d < kNumCacheFeatures && ++idx[d] == levels[d]) {
            idx[d] = 0;
            ++d;
        }
        if (d == kNumCacheFeatures)
            break;
    }
}

TEST(ReplName, AllPolicies)
{
    EXPECT_EQ(replName(uarch::ReplPolicy::LRU), "LRU");
    EXPECT_EQ(replName(uarch::ReplPolicy::NMRU), "NMRU");
    EXPECT_EQ(replName(uarch::ReplPolicy::RND), "RND");
}

} // namespace
} // namespace hwsw::spmv
