// Property suite for the workspace QR fast path.
//
// The workspace overloads of lstsq/weightedLstsq must be bit-identical
// to the allocation-per-call path — the genetic search's determinism
// contract (test_genetic_determinism) rides on it. To pin the
// semantics independently of the shared implementation, this file
// carries a verbatim copy of the pre-workspace solver (Matrix copy,
// ridge-row append, per-reflector std::vector allocations) as a
// reference, and drives randomized systems — including rank-deficient,
// weighted, ridge-augmented, and wide ones — through reference, plain,
// and dirty-reused-workspace paths, expecting exact equality of
// coefficients, rank, dropped columns, and residual norm.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "stats/qr.hpp"

namespace hwsw::stats {
namespace {

/** Verbatim pre-workspace solver, kept as the bit-exact reference. */
LstsqResult
referenceLstsq(const Matrix &X, std::span<const double> z, double rcond,
               double ridge)
{
    const std::size_t m0 = X.rows();
    const std::size_t n = X.cols();
    panicIf(z.size() != m0, "lstsq: z size must match X rows");
    fatalIf(m0 == 0 || n == 0, "lstsq: empty design matrix");
    fatalIf(ridge < 0.0, "lstsq: ridge must be >= 0");

    const std::size_t m = ridge > 0.0 ? m0 + n : m0;
    Matrix A(m, n);
    for (std::size_t r = 0; r < m0; ++r)
        for (std::size_t c = 0; c < n; ++c)
            A(r, c) = X(r, c);
    if (ridge > 0.0) {
        const double s = std::sqrt(ridge);
        for (std::size_t c = 0; c < n; ++c)
            A(m0 + c, c) = s;
    }
    std::vector<double> rhs(z.begin(), z.end());
    rhs.resize(m, 0.0);
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    double *a = A.data();

    std::vector<double> colNorm(n, 0.0);
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < n; ++c)
            colNorm[c] += a[r * n + c] * a[r * n + c];

    const std::size_t steps = std::min(m, n);
    std::size_t rank = 0;
    double firstDiag = 0.0;

    for (std::size_t k = 0; k < steps; ++k) {
        std::size_t best = k;
        for (std::size_t c = k + 1; c < n; ++c)
            if (colNorm[c] > colNorm[best])
                best = c;
        if (best != k) {
            for (std::size_t r = 0; r < m; ++r)
                std::swap(a[r * n + k], a[r * n + best]);
            std::swap(colNorm[k], colNorm[best]);
            std::swap(perm[k], perm[best]);
        }

        double norm = 0.0;
        for (std::size_t r = k; r < m; ++r)
            norm += a[r * n + k] * a[r * n + k];
        norm = std::sqrt(norm);

        if (k == 0)
            firstDiag = norm;
        const double drop_threshold = std::max(
            rcond * std::max(firstDiag, 1e-300),
            ridge > 0.0 ? 3.0 * std::sqrt(ridge) : 0.0);
        if (norm <= drop_threshold) {
            break;
        }
        ++rank;

        const double alpha = (a[k * n + k] >= 0.0) ? -norm : norm;
        std::vector<double> v(m - k);
        v[0] = a[k * n + k] - alpha;
        for (std::size_t r = k + 1; r < m; ++r)
            v[r - k] = a[r * n + k];
        double vnorm2 = 0.0;
        for (double vi : v)
            vnorm2 += vi * vi;
        a[k * n + k] = alpha;
        for (std::size_t r = k + 1; r < m; ++r)
            a[r * n + k] = 0.0;
        if (vnorm2 > 0.0) {
            std::vector<double> dots(n - k - 1, 0.0);
            for (std::size_t r = k; r < m; ++r) {
                const double vr = v[r - k];
                const double *row = a + r * n;
                for (std::size_t c = k + 1; c < n; ++c)
                    dots[c - k - 1] += vr * row[c];
            }
            for (double &d : dots)
                d *= 2.0 / vnorm2;
            for (std::size_t r = k; r < m; ++r) {
                const double vr = v[r - k];
                double *row = a + r * n;
                for (std::size_t c = k + 1; c < n; ++c)
                    row[c] -= dots[c - k - 1] * vr;
            }
            double dot = 0.0;
            for (std::size_t r = k; r < m; ++r)
                dot += v[r - k] * rhs[r];
            const double f = 2.0 * dot / vnorm2;
            for (std::size_t r = k; r < m; ++r)
                rhs[r] -= f * v[r - k];
        }

        for (std::size_t c = k + 1; c < n; ++c) {
            const double elim = a[k * n + c] * a[k * n + c];
            colNorm[c] -= elim;
            if (colNorm[c] < 1e-6 * std::max(elim, 1e-12)) {
                double s = 0.0;
                for (std::size_t r = k + 1; r < m; ++r)
                    s += a[r * n + c] * a[r * n + c];
                colNorm[c] = s;
            }
        }
    }

    std::vector<double> y(rank, 0.0);
    for (std::size_t i = rank; i-- > 0;) {
        double acc = rhs[i];
        for (std::size_t j = i + 1; j < rank; ++j)
            acc -= a[i * n + j] * y[j];
        y[i] = acc / a[i * n + i];
    }

    LstsqResult out;
    out.rank = rank;
    out.coeffs.assign(n, 0.0);
    for (std::size_t i = 0; i < rank; ++i)
        out.coeffs[perm[i]] = y[i];
    for (std::size_t i = rank; i < n; ++i)
        out.dropped.push_back(perm[i]);
    std::sort(out.dropped.begin(), out.dropped.end());

    double res = 0.0;
    for (std::size_t r = rank; r < m; ++r)
        res += rhs[r] * rhs[r];
    out.residualNorm = std::sqrt(res);
    return out;
}

/** Verbatim pre-workspace weighted solver (builds the full Xw copy). */
LstsqResult
referenceWeightedLstsq(const Matrix &X, std::span<const double> z,
                       std::span<const double> w, double rcond,
                       double ridge)
{
    const std::size_t m = X.rows();
    panicIf(w.size() != m, "weightedLstsq: weight size must match rows");
    Matrix Xw(m, X.cols());
    std::vector<double> zw(m);
    for (std::size_t r = 0; r < m; ++r) {
        fatalIf(w[r] < 0.0, "weightedLstsq: weights must be >= 0");
        const double s = std::sqrt(w[r]);
        for (std::size_t c = 0; c < X.cols(); ++c)
            Xw(r, c) = s * X(r, c);
        zw[r] = s * z[r];
    }
    return referenceLstsq(Xw, zw, rcond, ridge);
}

/** Every deterministic field must match to the bit. */
void
expectBitIdentical(const LstsqResult &want, const LstsqResult &got,
                   const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(want.rank, got.rank);
    EXPECT_EQ(want.dropped, got.dropped);
    ASSERT_EQ(want.coeffs.size(), got.coeffs.size());
    for (std::size_t i = 0; i < want.coeffs.size(); ++i)
        EXPECT_EQ(want.coeffs[i], got.coeffs[i])
            << "coefficient " << i;
    EXPECT_EQ(want.residualNorm, got.residualNorm);
}

/** A randomized system, possibly ill-conditioned on purpose. */
struct RandomSystem
{
    Matrix X;
    std::vector<double> z;
    std::vector<double> w;
};

RandomSystem
makeSystem(Rng &rng)
{
    const std::size_t m = 1 + rng.nextInt(60);
    const std::size_t n = 1 + rng.nextInt(20); // sometimes wider than m
    RandomSystem sys;
    sys.X = Matrix(m, n);
    sys.z.resize(m);
    sys.w.resize(m);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            sys.X(r, c) = rng.nextUniform(-2.0, 2.0);
        sys.z[r] = rng.nextUniform(-5.0, 5.0);
        sys.w[r] = rng.nextBool(0.1) ? 0.0 : rng.nextUniform(0.01, 4.0);
    }
    // Inject rank deficiencies: duplicate, scaled, and zero columns.
    if (n >= 3 && rng.nextBool(0.5)) {
        const std::size_t a = rng.nextInt(n);
        const std::size_t b = rng.nextInt(n);
        const double scale = rng.nextBool(0.5) ? 1.0 : -3.0;
        for (std::size_t r = 0; r < m; ++r)
            sys.X(r, b) = scale * sys.X(r, a);
    }
    if (n >= 2 && rng.nextBool(0.25)) {
        const std::size_t zc = rng.nextInt(n);
        for (std::size_t r = 0; r < m; ++r)
            sys.X(r, zc) = 0.0;
    }
    return sys;
}

double
pickRidge(Rng &rng)
{
    switch (rng.nextInt(3)) {
      case 0:
        return 0.0;
      case 1:
        return 1e-4;
      default:
        return 0.5;
    }
}

TEST(LstsqWorkspace, BitIdenticalToReferenceOnRandomSystems)
{
    Rng rng(2024);
    LstsqWorkspace ws; // deliberately reused dirty across all cases
    for (int iter = 0; iter < 200; ++iter) {
        SCOPED_TRACE("iteration " + std::to_string(iter));
        const RandomSystem sys = makeSystem(rng);
        const double ridge = pickRidge(rng);
        const LstsqResult want =
            referenceLstsq(sys.X, sys.z, 1e-10, ridge);
        expectBitIdentical(want, lstsq(sys.X, sys.z, 1e-10, ridge),
                           "allocating overload");
        expectBitIdentical(want, lstsq(sys.X, sys.z, ws, 1e-10, ridge),
                           "reused workspace");
    }
}

TEST(LstsqWorkspace, WeightedBitIdenticalToReference)
{
    Rng rng(4048);
    LstsqWorkspace ws;
    for (int iter = 0; iter < 200; ++iter) {
        SCOPED_TRACE("iteration " + std::to_string(iter));
        const RandomSystem sys = makeSystem(rng);
        const double ridge = pickRidge(rng);
        const LstsqResult want =
            referenceWeightedLstsq(sys.X, sys.z, sys.w, 1e-10, ridge);
        expectBitIdentical(
            want, weightedLstsq(sys.X, sys.z, sys.w, 1e-10, ridge),
            "allocating overload");
        expectBitIdentical(
            want, weightedLstsq(sys.X, sys.z, sys.w, ws, 1e-10, ridge),
            "reused workspace");
    }
}

TEST(LstsqWorkspace, ShrinkingAfterLargeSystemStaysIdentical)
{
    // A workspace sized by a big system must not leak stale tail
    // state into a later small one.
    Rng rng(77);
    LstsqWorkspace ws;
    RandomSystem big;
    big.X = Matrix(120, 20);
    big.z.resize(120);
    for (std::size_t r = 0; r < 120; ++r) {
        for (std::size_t c = 0; c < 20; ++c)
            big.X(r, c) = rng.nextUniform(-1.0, 1.0);
        big.z[r] = rng.nextUniform(-1.0, 1.0);
    }
    (void)lstsq(big.X, big.z, ws);

    Matrix small = {{1.0, 0.0}, {0.0, 2.0}};
    std::vector<double> z = {3.0, 8.0};
    expectBitIdentical(referenceLstsq(small, z, 1e-10, 0.0),
                       lstsq(small, z, ws, 1e-10, 0.0), "small after big");
}

TEST(LstsqWorkspace, RejectsBadInputsLikeLegacy)
{
    LstsqWorkspace ws;
    Matrix empty;
    std::vector<double> none;
    EXPECT_THROW(lstsq(empty, none, ws), FatalError);

    Matrix X = {{1.0}};
    std::vector<double> z = {1.0};
    EXPECT_THROW(lstsq(X, z, ws, 1e-10, -1.0), FatalError);
    std::vector<double> w = {-1.0};
    EXPECT_THROW(weightedLstsq(X, z, w, ws), FatalError);
    std::vector<double> shortZ;
    EXPECT_THROW(lstsq(X, shortZ, ws), PanicError);
}

} // namespace
} // namespace hwsw::stats
