// Property suite for the blocked workspace QR kernel.
//
// Pinning policy (DESIGN.md section 5.12): the blocked kernel is
// deterministic — same inputs give the same bits regardless of
// workspace history, and every public overload (allocating,
// workspace, weighted) shares it, so those paths are pinned
// bit-identical to each other with EXPECT_EQ. The kernel is NOT
// bit-identical to the fixed scalar reference (qr_reference.hpp):
// blocking changes summation order, and on exactly tied pivot norms
// the two may keep a different member of a duplicate-column family.
// Against the reference this file therefore pins what is numerically
// meaningful: equal rank, equal dropped-column count, and fitted
// values X b plus residual norm within a small relative tolerance.
//
// Blocked-path edge cases get dedicated tests: systems smaller than
// one panel, rank-deficient families straddling a panel boundary,
// all-zero trailing columns, weighted+ridge rows interacting with
// blocking, block-size invariance, and the reserve()/growths
// no-reallocation contract the genetic search relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "stats/qr.hpp"
#include "stats/qr_reference.hpp"

namespace hwsw::stats {
namespace {

/** Relative tolerance for fitted values against the reference. */
constexpr double kFitTol = 1e-7;

/** Every deterministic field must match to the bit. */
void
expectBitIdentical(const LstsqResult &want, const LstsqResult &got,
                   const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(want.rank, got.rank);
    EXPECT_EQ(want.dropped, got.dropped);
    ASSERT_EQ(want.coeffs.size(), got.coeffs.size());
    for (std::size_t i = 0; i < want.coeffs.size(); ++i)
        EXPECT_EQ(want.coeffs[i], got.coeffs[i])
            << "coefficient " << i;
    EXPECT_EQ(want.residualNorm, got.residualNorm);
}

std::vector<double>
fittedValues(const Matrix &X, const std::vector<double> &coeffs)
{
    std::vector<double> out(X.rows(), 0.0);
    for (std::size_t r = 0; r < X.rows(); ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < X.cols(); ++c)
            acc += X(r, c) * coeffs[c];
        out[r] = acc;
    }
    return out;
}

/**
 * Tolerance pin against the reference solver: same rank, same number
 * of dropped columns (the identity of a dropped duplicate may flip on
 * exact pivot ties), and the same fit — predictions and residual —
 * within kFitTol relative to the prediction scale.
 */
void
expectSameFit(const Matrix &X, const LstsqResult &want,
              const LstsqResult &got, const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(want.rank, got.rank);
    EXPECT_EQ(want.dropped.size(), got.dropped.size());
    ASSERT_EQ(want.coeffs.size(), got.coeffs.size());
    const std::vector<double> fw = fittedValues(X, want.coeffs);
    const std::vector<double> fg = fittedValues(X, got.coeffs);
    double scale = 1.0;
    for (double v : fw)
        scale = std::max(scale, std::fabs(v));
    for (std::size_t r = 0; r < fw.size(); ++r)
        EXPECT_NEAR(fw[r], fg[r], kFitTol * scale) << "row " << r;
    EXPECT_NEAR(want.residualNorm, got.residualNorm,
                kFitTol * (1.0 + want.residualNorm));
}

/** A randomized system, possibly ill-conditioned on purpose. */
struct RandomSystem
{
    Matrix X;
    std::vector<double> z;
    std::vector<double> w;
};

RandomSystem
makeSystem(Rng &rng, std::size_t maxRows = 60, std::size_t maxCols = 20)
{
    const std::size_t m = 1 + rng.nextInt(maxRows);
    const std::size_t n = 1 + rng.nextInt(maxCols); // sometimes wide
    RandomSystem sys;
    sys.X = Matrix(m, n);
    sys.z.resize(m);
    sys.w.resize(m);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            sys.X(r, c) = rng.nextUniform(-2.0, 2.0);
        sys.z[r] = rng.nextUniform(-5.0, 5.0);
        sys.w[r] = rng.nextBool(0.1) ? 0.0 : rng.nextUniform(0.01, 4.0);
    }
    // Inject rank deficiencies: duplicate, scaled, and zero columns.
    if (n >= 3 && rng.nextBool(0.5)) {
        const std::size_t a = rng.nextInt(n);
        const std::size_t b = rng.nextInt(n);
        const double scale = rng.nextBool(0.5) ? 1.0 : -3.0;
        for (std::size_t r = 0; r < m; ++r)
            sys.X(r, b) = scale * sys.X(r, a);
    }
    if (n >= 2 && rng.nextBool(0.25)) {
        const std::size_t zc = rng.nextInt(n);
        for (std::size_t r = 0; r < m; ++r)
            sys.X(r, zc) = 0.0;
    }
    return sys;
}

double
pickRidge(Rng &rng)
{
    switch (rng.nextInt(3)) {
      case 0:
        return 0.0;
      case 1:
        return 1e-4;
      default:
        return 0.5;
    }
}

TEST(LstsqWorkspace, MatchesReferenceOnRandomSystems)
{
    Rng rng(2024);
    LstsqWorkspace ws; // deliberately reused dirty across all cases
    for (int iter = 0; iter < 200; ++iter) {
        SCOPED_TRACE("iteration " + std::to_string(iter));
        const RandomSystem sys = makeSystem(rng);
        const double ridge = pickRidge(rng);
        const LstsqResult want =
            referenceLstsq(sys.X, sys.z, 1e-10, ridge);
        const LstsqResult alloc = lstsq(sys.X, sys.z, 1e-10, ridge);
        // Fresh-allocation path and dirty reused workspace must agree
        // to the bit (the determinism contract the search rides on).
        expectBitIdentical(alloc, lstsq(sys.X, sys.z, ws, 1e-10, ridge),
                           "reused workspace vs allocating");
        // The blocked kernel vs the fixed scalar reference: tolerance
        // pin on the fit, exact pin on rank.
        expectSameFit(sys.X, want, alloc, "blocked vs reference");
    }
}

TEST(LstsqWorkspace, WeightedMatchesReference)
{
    Rng rng(4048);
    LstsqWorkspace ws;
    for (int iter = 0; iter < 200; ++iter) {
        SCOPED_TRACE("iteration " + std::to_string(iter));
        const RandomSystem sys = makeSystem(rng);
        const double ridge = pickRidge(rng);
        const LstsqResult want =
            referenceWeightedLstsq(sys.X, sys.z, sys.w, 1e-10, ridge);
        const LstsqResult alloc =
            weightedLstsq(sys.X, sys.z, sys.w, 1e-10, ridge);
        expectBitIdentical(
            alloc, weightedLstsq(sys.X, sys.z, sys.w, ws, 1e-10, ridge),
            "reused workspace vs allocating");
        expectSameFit(sys.X, want, alloc, "blocked vs reference");
    }
}

TEST(LstsqWorkspace, BlockSizeChangesBitsButNotTheFit)
{
    // Panel width moves summation boundaries, so different block
    // sizes may differ in the last bits — but every width must agree
    // on the fit, and any fixed width must be deterministic.
    Rng rng(909);
    for (int iter = 0; iter < 40; ++iter) {
        SCOPED_TRACE("iteration " + std::to_string(iter));
        const RandomSystem sys = makeSystem(rng, 100, 48);
        const double ridge = pickRidge(rng);

        LstsqWorkspace def;
        const LstsqResult want = lstsq(sys.X, sys.z, def, 1e-10, ridge);
        for (std::size_t nb : {std::size_t{1}, std::size_t{8},
                               std::size_t{64}}) {
            LstsqWorkspace ws;
            ws.blockSize = nb;
            const LstsqResult got =
                lstsq(sys.X, sys.z, ws, 1e-10, ridge);
            expectSameFit(sys.X, want, got,
                          "block " + std::to_string(nb));
            expectBitIdentical(got,
                               lstsq(sys.X, sys.z, ws, 1e-10, ridge),
                               "determinism at block " +
                                   std::to_string(nb));
        }
    }
}

TEST(LstsqWorkspace, SystemsSmallerThanOneBlock)
{
    // m and n both below the panel width: the kernel must degrade to
    // a single short panel.
    LstsqWorkspace ws;

    Matrix tiny = {{2.0}};
    std::vector<double> z1 = {6.0};
    expectSameFit(tiny, referenceLstsq(tiny, z1, 1e-10, 0.0),
                  lstsq(tiny, z1, ws, 1e-10, 0.0), "1x1");

    Matrix small = {{1.0, 0.0}, {0.0, 2.0}, {1.0, 1.0}};
    std::vector<double> z3 = {3.0, 8.0, 7.0};
    expectSameFit(small, referenceLstsq(small, z3, 1e-10, 1e-4),
                  lstsq(small, z3, ws, 1e-10, 1e-4), "3x2 ridge");

    // Wider than tall: rank limited by rows, trailing columns dropped.
    Matrix wide = {{1.0, 2.0, 3.0, 4.0, 5.0},
                   {0.0, 1.0, 0.0, 1.0, 0.0}};
    std::vector<double> z2 = {1.0, 2.0};
    const LstsqResult want = referenceLstsq(wide, z2, 1e-10, 0.0);
    const LstsqResult got = lstsq(wide, z2, ws, 1e-10, 0.0);
    expectSameFit(wide, want, got, "2x5 wide");
    EXPECT_EQ(got.rank, 2u);
    EXPECT_EQ(got.dropped.size(), 3u);
}

TEST(LstsqWorkspace, RankDeficientFamilyStraddlesPanelBoundary)
{
    // Columns 14..17 are scaled copies of column 2: the dependent
    // family spans the first panel boundary (default width 16), so
    // drops must be detected both inside a panel and right after a
    // trailing-matrix flush.
    Rng rng(5150);
    const std::size_t m = 60, n = 40;
    Matrix X(m, n);
    std::vector<double> z(m);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            X(r, c) = rng.nextUniform(-1.0, 1.0);
        z[r] = rng.nextUniform(-2.0, 2.0);
    }
    const double scales[] = {2.0, -1.0, 0.5, 3.0};
    for (std::size_t j = 0; j < 4; ++j)
        for (std::size_t r = 0; r < m; ++r)
            X(r, 14 + j) = scales[j] * X(r, 2);

    LstsqWorkspace ws;
    for (double ridge : {0.0, 1e-4}) {
        SCOPED_TRACE("ridge " + std::to_string(ridge));
        const LstsqResult want = referenceLstsq(X, z, 1e-10, ridge);
        const LstsqResult got = lstsq(X, z, ws, 1e-10, ridge);
        expectSameFit(X, want, got, "straddling family");
        EXPECT_EQ(got.rank, n - 4);
        EXPECT_EQ(got.dropped.size(), 4u);
    }
}

TEST(LstsqWorkspace, AllZeroTrailingColumns)
{
    // A zero tail exercises the drop path at the very end of the
    // factorization: every zero column must be reported dropped with
    // a zero coefficient.
    Rng rng(31337);
    const std::size_t m = 50, n = 30, firstZero = 20;
    Matrix X(m, n);
    std::vector<double> z(m);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < firstZero; ++c)
            X(r, c) = rng.nextUniform(-1.0, 1.0);
        z[r] = rng.nextUniform(-2.0, 2.0);
    }

    LstsqWorkspace ws;
    const LstsqResult want = referenceLstsq(X, z, 1e-10, 1e-4);
    const LstsqResult got = lstsq(X, z, ws, 1e-10, 1e-4);
    expectSameFit(X, want, got, "zero tail");
    EXPECT_EQ(got.rank, firstZero);
    ASSERT_EQ(got.dropped.size(), n - firstZero);
    for (std::size_t c = firstZero; c < n; ++c) {
        EXPECT_TRUE(std::find(got.dropped.begin(), got.dropped.end(),
                              c) != got.dropped.end())
            << "column " << c << " should be dropped";
        EXPECT_EQ(got.coeffs[c], 0.0);
    }
}

TEST(LstsqWorkspace, WeightedRidgeRowsInteractWithBlocking)
{
    // Ridge rows extend the factor below the data rows and zero
    // weights null out whole data rows; with n > block size the
    // ridge-dominated lower region spans multiple panels.
    Rng rng(2718);
    const std::size_t m = 45, n = 40;
    Matrix X(m, n);
    std::vector<double> z(m), w(m);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < n; ++c)
            X(r, c) = rng.nextUniform(-2.0, 2.0);
        z[r] = rng.nextUniform(-5.0, 5.0);
        w[r] = (r % 7 == 0) ? 0.0 : rng.nextUniform(0.01, 4.0);
    }

    LstsqWorkspace ws;
    for (double ridge : {1e-4, 0.5}) {
        SCOPED_TRACE("ridge " + std::to_string(ridge));
        const LstsqResult want =
            referenceWeightedLstsq(X, z, w, 1e-10, ridge);
        const LstsqResult got =
            weightedLstsq(X, z, w, ws, 1e-10, ridge);
        expectSameFit(X, want, got, "weighted+ridge blocked");
    }
}

TEST(LstsqWorkspace, ReserveMakesSteadyStateAllocationFree)
{
    // The genetic search pre-sizes each scratch workspace from the
    // spec space's maximum design width; after that, no solve within
    // the reserved shape may grow a buffer.
    LstsqWorkspace ws;
    ws.reserve(60, 21, /*with_ridge=*/true);
    const std::uint64_t g0 = ws.growths;
    EXPECT_GT(g0, 0u);

    Rng rng(626);
    for (int iter = 0; iter < 60; ++iter) {
        const RandomSystem sys = makeSystem(rng, 60, 21);
        const double ridge = pickRidge(rng);
        (void)lstsq(sys.X, sys.z, ws, 1e-10, ridge);
        (void)weightedLstsq(sys.X, sys.z, sys.w, ws, 1e-10, ridge);
    }
    EXPECT_EQ(ws.growths, g0)
        << "a solve within the reserved shape reallocated";
}

TEST(LstsqWorkspace, ShrinkingAfterLargeSystemStaysIdentical)
{
    // A workspace sized by a big system must not leak stale tail
    // state into a later small one.
    Rng rng(77);
    LstsqWorkspace ws;
    RandomSystem big;
    big.X = Matrix(120, 20);
    big.z.resize(120);
    for (std::size_t r = 0; r < 120; ++r) {
        for (std::size_t c = 0; c < 20; ++c)
            big.X(r, c) = rng.nextUniform(-1.0, 1.0);
        big.z[r] = rng.nextUniform(-1.0, 1.0);
    }
    (void)lstsq(big.X, big.z, ws);

    Matrix small = {{1.0, 0.0}, {0.0, 2.0}};
    std::vector<double> z = {3.0, 8.0};
    expectBitIdentical(lstsq(small, z, 1e-10, 0.0),
                       lstsq(small, z, ws, 1e-10, 0.0),
                       "small after big");
    expectSameFit(small, referenceLstsq(small, z, 1e-10, 0.0),
                  lstsq(small, z, ws, 1e-10, 0.0), "vs reference");
}

TEST(LstsqWorkspace, PhaseTimersAccumulateWhenEnabled)
{
    Rng rng(404);
    LstsqWorkspace ws;
    ws.collectPhaseTimes = true;
    const RandomSystem sys = makeSystem(rng, 60, 20);
    for (int i = 0; i < 10; ++i)
        (void)lstsq(sys.X, sys.z, ws);
    EXPECT_GT(ws.factorSeconds, 0.0);
    EXPECT_GE(ws.solveSeconds, 0.0);
}

TEST(LstsqWorkspace, RejectsBadInputsLikeLegacy)
{
    LstsqWorkspace ws;
    Matrix empty;
    std::vector<double> none;
    EXPECT_THROW(lstsq(empty, none, ws), FatalError);

    Matrix X = {{1.0}};
    std::vector<double> z = {1.0};
    EXPECT_THROW(lstsq(X, z, ws, 1e-10, -1.0), FatalError);
    std::vector<double> w = {-1.0};
    EXPECT_THROW(weightedLstsq(X, z, w, ws), FatalError);
    std::vector<double> shortZ;
    EXPECT_THROW(lstsq(X, shortZ, ws), PanicError);
}

} // namespace
} // namespace hwsw::stats
