// Tests for the length-prefixed wire protocol.
#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/parse.hpp"
#include "serve/protocol.hpp"

#include "serve_test_util.hpp"

namespace hwsw::serve {
namespace {

/** A connected fd pair; frames work on any stream socket. */
struct FdPair
{
    int a = -1;
    int b = -1;

    FdPair()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = fds[0];
        b = fds[1];
    }

    ~FdPair()
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }
};

TEST(ServeProtocol, FrameRoundTrip)
{
    FdPair p;
    const std::string payload = "predict m 1 2 3\nwith body\n";
    ASSERT_TRUE(writeFrame(p.a, payload));
    std::string got;
    ASSERT_TRUE(readFrame(p.b, got));
    EXPECT_EQ(got, payload);
}

TEST(ServeProtocol, EmptyAndBinaryFrames)
{
    FdPair p;
    ASSERT_TRUE(writeFrame(p.a, ""));
    std::string nul("\0\x01\xff", 3); // length prefix, not delimiters
    ASSERT_TRUE(writeFrame(p.a, nul));
    std::string got;
    ASSERT_TRUE(readFrame(p.b, got));
    EXPECT_TRUE(got.empty());
    ASSERT_TRUE(readFrame(p.b, got));
    EXPECT_EQ(got, nul);
}

TEST(ServeProtocol, SequentialFramesKeepBoundaries)
{
    FdPair p;
    for (int i = 0; i < 20; ++i)
        ASSERT_TRUE(writeFrame(p.a, "frame " + std::to_string(i)));
    for (int i = 0; i < 20; ++i) {
        std::string got;
        ASSERT_TRUE(readFrame(p.b, got));
        EXPECT_EQ(got, "frame " + std::to_string(i));
    }
}

TEST(ServeProtocol, ReadFailsOnEofAndTruncation)
{
    {
        FdPair p;
        ::close(p.a);
        p.a = -1;
        std::string got;
        EXPECT_FALSE(readFrame(p.b, got)); // clean EOF
    }
    {
        FdPair p;
        // Length prefix promising 100 bytes, then only 3, then EOF.
        const std::uint8_t prefix[4] = {0, 0, 0, 100};
        ASSERT_EQ(::write(p.a, prefix, 4), 4);
        ASSERT_EQ(::write(p.a, "abc", 3), 3);
        ::close(p.a);
        p.a = -1;
        std::string got;
        EXPECT_FALSE(readFrame(p.b, got));
    }
}

TEST(ServeProtocol, ReadRejectsOversizedFrames)
{
    FdPair p;
    const std::uint32_t huge = kMaxFrameBytes + 1;
    const std::uint8_t prefix[4] = {
        static_cast<std::uint8_t>(huge >> 24),
        static_cast<std::uint8_t>(huge >> 16),
        static_cast<std::uint8_t>(huge >> 8),
        static_cast<std::uint8_t>(huge)};
    ASSERT_EQ(::write(p.a, prefix, 4), 4);
    std::string got;
    EXPECT_FALSE(readFrame(p.b, got));
}

TEST(ServeProtocol, WriteFailsOnClosedPeer)
{
    FdPair p;
    ::close(p.b);
    p.b = -1;
    // MSG_NOSIGNAL in writeAll: a dead peer means `false`, not a
    // SIGPIPE that would kill this process.
    std::string big(1 << 20, 'x');
    bool ok = true;
    for (int i = 0; i < 8 && ok; ++i)
        ok = writeFrame(p.a, big);
    EXPECT_FALSE(ok);
}

TEST(ServeProtocol, TokenAndLineSplitting)
{
    const auto tokens = splitTokens("  predict   m  1.5\t2 ");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0], "predict");
    EXPECT_EQ(tokens[3], "2");
    EXPECT_TRUE(splitTokens("").empty());

    const auto [line, rest] = splitFirstLine("load m\nbody1\nbody2");
    EXPECT_EQ(line, "load m");
    EXPECT_EQ(rest, "body1\nbody2");
    const auto [only, none] = splitFirstLine("bare");
    EXPECT_EQ(only, "bare");
    EXPECT_TRUE(none.empty());
}

TEST(ServeProtocol, DoubleFormatRoundTripsExactly)
{
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const double v =
            std::exp(rng.nextGaussian() * 20.0) *
            (rng.nextInt(2) ? 1.0 : -1.0);
        const std::string s = formatDouble(v);
        const auto back = parseDouble(s);
        ASSERT_TRUE(back) << s;
        EXPECT_EQ(*back, v) << s;
    }
}

TEST(ServeProtocol, RowRoundTrip)
{
    Rng rng(4);
    const FeatureVector row = testutil::makeRow(rng);
    std::string text;
    appendRow(text, row);
    const auto tokens = splitTokens(text);
    ASSERT_EQ(tokens.size(), core::kNumVars);
    const auto back = parseRow(tokens);
    ASSERT_TRUE(back);
    for (std::size_t i = 0; i < core::kNumVars; ++i)
        EXPECT_EQ((*back)[i], row[i]);
}

TEST(ServeProtocol, ParseRowRejectsDefects)
{
    std::vector<std::string_view> few = {"1.0", "2.0"};
    EXPECT_FALSE(parseRow(few));

    Rng rng(5);
    const FeatureVector row = testutil::makeRow(rng);
    std::string text;
    appendRow(text, row);
    auto tokens = splitTokens(text);
    tokens[3] = "not-a-number";
    EXPECT_FALSE(parseRow(tokens));
    tokens[3] = "inf";
    EXPECT_FALSE(parseRow(tokens));
}

TEST(ServeProtocol, RequestBuildersAreParseable)
{
    Rng rng(6);
    const FeatureVector row = testutil::makeRow(rng);

    {
        const std::string req = makePredictRequest("m", row);
        const auto tokens = splitTokens(splitFirstLine(req).first);
        ASSERT_EQ(tokens.size(), 2 + core::kNumVars);
        EXPECT_EQ(tokens[0], "predict");
        EXPECT_EQ(tokens[1], "m");
        EXPECT_TRUE(parseRow(
            std::span(tokens).subspan(2, core::kNumVars)));
    }
    {
        std::vector<FeatureVector> rows = {row, row, row};
        const std::string req = makeBatchRequest("m", rows);
        auto [line, body] = splitFirstLine(req);
        const auto tokens = splitTokens(line);
        ASSERT_EQ(tokens.size(), 3u);
        EXPECT_EQ(tokens[0], "batch");
        EXPECT_EQ(tokens[2], "3");
        for (int i = 0; i < 3; ++i) {
            auto [rowline, rest] = splitFirstLine(body);
            body = rest;
            EXPECT_TRUE(parseRow(splitTokens(rowline)));
        }
    }
    {
        const std::string req = makeLoadRequest("m", "model text\nhere");
        const auto [line, body] = splitFirstLine(req);
        EXPECT_EQ(line, "load m");
        EXPECT_EQ(body, "model text\nhere");
    }
    {
        const auto tokens =
            splitTokens(makeSwapRequest("m", 7));
        ASSERT_EQ(tokens.size(), 3u);
        EXPECT_EQ(tokens[0], "swap");
        EXPECT_EQ(tokens[2], "7");
    }
    {
        const std::string req =
            makeObserveRequest("m", "app1", row, 2.5);
        const auto tokens = splitTokens(splitFirstLine(req).first);
        ASSERT_EQ(tokens.size(), 3 + core::kNumVars + 1);
        EXPECT_EQ(tokens[0], "observe");
        EXPECT_EQ(tokens[1], "m");
        EXPECT_EQ(tokens[2], "app1");
        EXPECT_EQ(parseDouble(tokens.back()), 2.5);
    }
    EXPECT_EQ(makePingRequest(), "ping");
    EXPECT_EQ(makeStatsRequest(), "stats");
}

} // namespace
} // namespace hwsw::serve
