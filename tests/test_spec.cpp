// Property tests for chromosomes and the genetic operators C1-C3,
// M1-M2 (Section 3.4).
#include <gtest/gtest.h>

#include "core/spec.hpp"

namespace hwsw::core {
namespace {

/** Invariants every specification must satisfy. */
void
expectValid(const ModelSpec &spec)
{
    for (std::size_t v = 0; v < kNumVars; ++v)
        EXPECT_LE(spec.genes[v], kMaxGene);
    EXPECT_GE(spec.numActiveVars(), 1u);
    for (std::size_t i = 0; i < spec.interactions.size(); ++i) {
        const Interaction &it = spec.interactions[i];
        EXPECT_LT(it.a, it.b);
        EXPECT_LT(it.b, kNumVars);
        if (i > 0) {
            EXPECT_LT(spec.interactions[i - 1], it); // sorted unique
        }
    }
}

TEST(ModelSpec, NormalizeOrdersAndDeduplicates)
{
    ModelSpec spec;
    spec.genes[0] = 1;
    spec.interactions = {{5, 2}, {2, 5}, {3, 3}, {1, 4}};
    spec.normalize();
    ASSERT_EQ(spec.interactions.size(), 2u);
    EXPECT_EQ(spec.interactions[0], (Interaction{1, 4}));
    EXPECT_EQ(spec.interactions[1], (Interaction{2, 5}));
}

TEST(ModelSpec, NormalizeDropsOutOfRange)
{
    ModelSpec spec;
    spec.genes[0] = 1;
    spec.interactions = {{0, static_cast<std::uint16_t>(kNumVars)}};
    spec.normalize();
    EXPECT_TRUE(spec.interactions.empty());
}

TEST(ModelSpec, RandomSpecsAreValid)
{
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const ModelSpec spec = ModelSpec::random(rng, 0.4, 10);
        expectValid(spec);
        EXPECT_LE(spec.interactions.size(), 10u);
    }
}

TEST(ModelSpec, RandomNeverEmpty)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        // Even with inclusion probability 0 a variable is forced in.
        const ModelSpec spec = ModelSpec::random(rng, 0.0, 0);
        EXPECT_GE(spec.numActiveVars(), 1u);
    }
}

TEST(ModelSpec, GeneTxNames)
{
    EXPECT_EQ(geneTxName(GeneTx::Excluded), "un-used");
    EXPECT_EQ(geneTxName(GeneTx::Linear), "linear");
    EXPECT_EQ(geneTxName(GeneTx::Quadratic), "poly, degree 2");
    EXPECT_EQ(geneTxName(GeneTx::Spline), "spline, 3 knots");
}

TEST(ModelSpec, DescribeMentionsActiveVariables)
{
    ModelSpec spec;
    spec.genes[0] = 1; // x1.ctrl
    spec.interactions = {{0, 15}};
    const std::string d = spec.describe();
    EXPECT_NE(d.find("x1.ctrl"), std::string::npos);
    EXPECT_NE(d.find("*"), std::string::npos);
}

TEST(CrossoverC1, ExchangesExactlyOneGene)
{
    Rng rng(7);
    ModelSpec a, b;
    for (std::size_t v = 0; v < kNumVars; ++v) {
        a.genes[v] = 1;
        b.genes[v] = 3;
    }
    for (int trial = 0; trial < 50; ++trial) {
        const ModelSpec child = crossoverVariable(a, b, rng);
        int changed = 0;
        for (std::size_t v = 0; v < kNumVars; ++v)
            changed += (child.genes[v] != a.genes[v]);
        EXPECT_EQ(changed, 1);
        EXPECT_EQ(child.interactions, a.interactions);
    }
}

TEST(CrossoverC2, ExchangesInteraction)
{
    Rng rng(11);
    ModelSpec a, b;
    a.genes[0] = 1;
    b.genes[0] = 1;
    a.interactions = {{0, 1}};
    b.interactions = {{2, 3}};
    bool saw_exchange = false;
    for (int trial = 0; trial < 50; ++trial) {
        const ModelSpec child = crossoverInteraction(a, b, rng);
        expectValid(child);
        EXPECT_EQ(child.interactions.size(), 1u);
        if (child.interactions[0] == Interaction{2, 3})
            saw_exchange = true;
    }
    EXPECT_TRUE(saw_exchange);
}

TEST(CrossoverC2, DonatesWhenChildHasNone)
{
    Rng rng(13);
    ModelSpec a, b;
    a.genes[0] = 1;
    b.genes[0] = 1;
    b.interactions = {{4, 7}};
    const ModelSpec child = crossoverInteraction(a, b, rng);
    ASSERT_EQ(child.interactions.size(), 1u);
    EXPECT_EQ(child.interactions[0], (Interaction{4, 7}));
}

TEST(CrossoverC3, BuildsInteractionFromBothParents)
{
    Rng rng(17);
    ModelSpec a, b;
    a.genes[2] = 1; // only active var in a
    b.genes[9] = 2; // only active var in b
    const ModelSpec child = crossoverNewInteraction(a, b, rng);
    ASSERT_EQ(child.interactions.size(), 1u);
    EXPECT_EQ(child.interactions[0], (Interaction{2, 9}));
    expectValid(child);
}

TEST(MutationM1, KeepsSpecValidAndBounded)
{
    Rng rng(19);
    ModelSpec spec = ModelSpec::random(rng, 0.5, 8);
    for (int i = 0; i < 300; ++i) {
        mutateInteraction(spec, rng, 12);
        expectValid(spec);
        EXPECT_LE(spec.interactions.size(), 12u);
    }
}

TEST(MutationM1, CanGrowAndShrink)
{
    Rng rng(23);
    ModelSpec spec;
    spec.genes[0] = 1;
    std::size_t min_seen = 99, max_seen = 0;
    for (int i = 0; i < 300; ++i) {
        mutateInteraction(spec, rng, 6);
        min_seen = std::min(min_seen, spec.interactions.size());
        max_seen = std::max(max_seen, spec.interactions.size());
    }
    EXPECT_EQ(min_seen, 0u);
    EXPECT_GE(max_seen, 3u);
}

TEST(MutationM2, ChangesGenesButNeverEmpties)
{
    Rng rng(29);
    ModelSpec spec;
    spec.genes[3] = 1;
    for (int i = 0; i < 300; ++i) {
        mutateVariable(spec, rng);
        expectValid(spec);
    }
}

TEST(ModelSpec, EqualityIncludesInteractions)
{
    ModelSpec a, b;
    a.genes[0] = b.genes[0] = 1;
    EXPECT_EQ(a, b);
    b.interactions = {{0, 1}};
    EXPECT_NE(a, b);
}

} // namespace
} // namespace hwsw::core
