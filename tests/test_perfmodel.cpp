// Property tests for the analytic performance model: every Table 2
// knob must move CPI in the physically sensible direction, across
// all seven applications (parameterized sweep).
#include <gtest/gtest.h>

#include <map>

#include "uarch/perfmodel.hpp"
#include "workload/apps.hpp"
#include "workload/generator.hpp"

namespace hwsw::uarch {
namespace {

/** Cached signatures per app (signature extraction is not free). */
const ShardSignature &
sigFor(const std::string &name)
{
    static std::map<std::string, ShardSignature> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        const auto shards = wl::makeShards(wl::makeApp(name), 16384, 3);
        const auto sigs = computeSignatures(shards);
        it = cache.emplace(name, sigs[2]).first; // warm shard
    }
    return it->second;
}

class PerfModelAppTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const ShardSignature &sig() const { return sigFor(GetParam()); }
};

TEST_P(PerfModelAppTest, CpiIsPositiveAndBounded)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const UarchConfig cfg = UarchConfig::randomSample(rng);
        const double cpi = shardCpi(sig(), cfg);
        EXPECT_GT(cpi, 1.0 / 8.0); // cannot beat max width
        EXPECT_LT(cpi, 100.0);
    }
}

TEST_P(PerfModelAppTest, BreakdownSumsToTotal)
{
    UarchConfig cfg;
    const CpiBreakdown b = predictCpi(sig(), cfg);
    EXPECT_NEAR(b.base + b.branch + b.icache + b.dcache, b.total(),
                1e-12);
    EXPECT_GT(b.base, 0.0);
    EXPECT_GE(b.branch, 0.0);
    EXPECT_GE(b.icache, 0.0);
    EXPECT_GE(b.dcache, 0.0);
    EXPECT_NEAR(b.ipc(), 1.0 / b.total(), 1e-12);
}

TEST_P(PerfModelAppTest, WiderPipelineNeverHurts)
{
    UarchConfig narrow, wide;
    narrow.width = 1;
    wide.width = 8;
    EXPECT_GE(shardCpi(sig(), narrow), shardCpi(sig(), wide));
}

TEST_P(PerfModelAppTest, BiggerWindowHelpsExceptBranchCost)
{
    // A deeper window improves ILP and memory overlap but raises the
    // misprediction penalty; the non-branch components must improve.
    UarchConfig small, big;
    small.lsq = 11;
    small.iq = 22;
    small.rob = 64;
    small.physRegs = 86;
    big.lsq = 36;
    big.iq = 72;
    big.rob = 224;
    big.physRegs = 296;
    const CpiBreakdown s = predictCpi(sig(), small);
    const CpiBreakdown b = predictCpi(sig(), big);
    EXPECT_GE(s.base + s.icache + s.dcache + 1e-9,
              b.base + b.icache + b.dcache);
    EXPECT_LE(s.branch, b.branch + 1e-9);
}

TEST_P(PerfModelAppTest, BiggerCachesNeverHurt)
{
    UarchConfig small, big;
    small.dcacheKB = 16;
    small.icacheKB = 16;
    small.l2KB = 256;
    big.dcacheKB = 128;
    big.icacheKB = 128;
    big.l2KB = 4096;
    EXPECT_GE(shardCpi(sig(), small) + 1e-9, shardCpi(sig(), big));
}

TEST_P(PerfModelAppTest, LowerL2LatencyNeverHurts)
{
    UarchConfig fast, slow;
    fast.l2Latency = 6;
    slow.l2Latency = 14;
    EXPECT_GE(shardCpi(sig(), slow) + 1e-9, shardCpi(sig(), fast));
}

TEST_P(PerfModelAppTest, MoreMshrsNeverHurt)
{
    UarchConfig one, eight;
    one.mshrs = 1;
    eight.mshrs = 8;
    EXPECT_GE(shardCpi(sig(), one) + 1e-9, shardCpi(sig(), eight));
}

TEST_P(PerfModelAppTest, MoreFunctionalUnitsNeverHurt)
{
    UarchConfig few, many;
    few.intAlu = 1;
    few.intMulDiv = 1;
    few.fpAlu = 1;
    few.fpMul = 1;
    few.cachePorts = 1;
    many.intAlu = 4;
    many.intMulDiv = 2;
    many.fpAlu = 3;
    many.fpMul = 2;
    many.cachePorts = 4;
    EXPECT_GE(shardCpi(sig(), few) + 1e-9, shardCpi(sig(), many));
}

TEST_P(PerfModelAppTest, HigherAssociativityNeverHurts)
{
    UarchConfig direct, assoc;
    direct.l1Assoc = 1;
    direct.l2Assoc = 2;
    assoc.l1Assoc = 8;
    assoc.l2Assoc = 8;
    EXPECT_GE(shardCpi(sig(), direct) + 1e-9, shardCpi(sig(), assoc));
}

INSTANTIATE_TEST_SUITE_P(AllApps, PerfModelAppTest,
                         ::testing::ValuesIn(wl::suiteAppNames()),
                         [](const auto &info) { return info.param; });

TEST(PerfModel, MemoryBoundAppBenefitsMoreFromL2)
{
    // Hardware-software interaction: growing the L2 must help the
    // pointer-chasing app more than the cache-resident one.
    UarchConfig small, big;
    small.l2KB = 256;
    big.l2KB = 4096;
    const double omnet_gain = shardCpi(sigFor("omnetpp"), small) -
        shardCpi(sigFor("omnetpp"), big);
    const double hmmer_gain = shardCpi(sigFor("hmmer"), small) -
        shardCpi(sigFor("hmmer"), big);
    EXPECT_GT(omnet_gain, hmmer_gain);
}

TEST(PerfModel, FpUnitsBindOnIndependentFpStream)
{
    // A stream of independent FP multiplies is FP-issue bound: the
    // second multiplier must help it, and must not matter at all to
    // an integer application like sjeng.
    std::vector<wl::MicroOp> ops(8192);
    for (auto &op : ops)
        op.cls = wl::OpClass::FpMulDiv;
    const ShardSignature fp_sig = computeSignature(ops);

    UarchConfig one_fp;
    one_fp.width = 8;
    one_fp.lsq = 36;
    one_fp.iq = 72;
    one_fp.rob = 224;
    one_fp.physRegs = 296;
    one_fp.fpMul = 1;
    UarchConfig two_fp = one_fp;
    two_fp.fpMul = 2;
    EXPECT_GT(shardCpi(fp_sig, one_fp),
              shardCpi(fp_sig, two_fp) + 1e-6);
    EXPECT_NEAR(shardCpi(sigFor("sjeng"), one_fp),
                shardCpi(sigFor("sjeng"), two_fp), 1e-9);
}

TEST(PerfModel, BranchyAppPaysMoreForBranches)
{
    // sjeng's hard-to-predict branches must cost more CPI than
    // bwaves's loop branches on the same deep configuration, and its
    // mispredict rate must be clearly higher.
    UarchConfig deep;
    deep.lsq = 36;
    deep.iq = 72;
    deep.rob = 224;
    deep.physRegs = 296;
    // Average over a long stream so every phase is represented.
    const ShardSignature sj = computeSignature(
        wl::StreamGenerator(wl::makeApp("sjeng")).generate(120000));
    const ShardSignature bw = computeSignature(
        wl::StreamGenerator(wl::makeApp("bwaves")).generate(120000));
    const double sj_per_branch = sj.mispredictPerOp /
        sj.classFrac[static_cast<std::size_t>(wl::OpClass::Branch)];
    const double bw_per_branch = bw.mispredictPerOp /
        bw.classFrac[static_cast<std::size_t>(wl::OpClass::Branch)];
    EXPECT_GT(sj_per_branch, 1.3 * bw_per_branch);
    (void)deep;
}

} // namespace
} // namespace hwsw::uarch
