// Failure domains of the distributed island search: lease
// grant/renew/refuse/expiry (with the monotonic clock aged by the
// `island.lease.expire.skew` fault), elastic auto-join membership,
// async migration's pinned first-delivery-wins schedule, the durable
// coordination journal (worker resume AND coordinator restart), and
// the full stall -> lease expiry -> standby takeover -> zombie
// fencing path over real loopback sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <thread>

#include "common/assert.hpp"
#include "common/fault/fault.hpp"
#include "core/island.hpp"
#include "serve/island.hpp"
#include "serve/server.hpp"

namespace hwsw::core {
namespace {

Dataset
detData(std::size_t per_app, std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"alpha", "beta", "gamma"}) {
        const double base = 1.0 + 0.5 * (app[0] - 'a');
        for (std::size_t i = 0; i < per_app; ++i) {
            ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[7] = rng.nextUniform(10, 1000);
            r.vars[kNumSw] = 1 << rng.nextInt(4);
            r.vars[kNumSw + 4] = 16 << rng.nextInt(4);
            r.perf = base + 2.0 * r.vars[6] + 3.0 / r.vars[kNumSw] +
                0.3 * std::sqrt(r.vars[7]) * 16.0 /
                    r.vars[kNumSw + 4];
            ds.add(r);
        }
    }
    return ds;
}

IslandOptions
baseOpts(std::size_t islands)
{
    IslandOptions o;
    o.ga.populationSize = 12;
    o.ga.generations = 6;
    o.ga.numThreads = 1;
    o.ga.seed = 1234;
    o.islands = islands;
    o.migrationInterval = 2;
    o.migrants = 2;
    return o;
}

void
expectSameResult(const GaResult &a, const GaResult &b,
                 const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.best.spec, b.best.spec);
    EXPECT_EQ(a.best.fitness, b.best.fitness);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        EXPECT_EQ(a.history[g].bestFitness, b.history[g].bestFitness);
        EXPECT_EQ(a.history[g].meanFitness, b.history[g].meanFitness);
    }
    ASSERT_EQ(a.population.size(), b.population.size());
    for (std::size_t i = 0; i < a.population.size(); ++i) {
        EXPECT_EQ(a.population[i].spec, b.population[i].spec);
        EXPECT_EQ(a.population[i].fitness, b.population[i].fitness);
    }
}

/** handle() convenience wrapper for protocol-level tests. */
std::string
call(serve::IslandCoordinator &c, std::string_view verb,
     std::vector<std::string_view> args, std::string_view body = "")
{
    return c.handle(verb, std::span<const std::string_view>(args),
                    body);
}

/** Two distinguishable migrant blocks for protocol-level posts. */
std::string
migrantBody(double tag)
{
    std::ostringstream os;
    for (int i = 0; i < 2; ++i) {
        ScoredSpec s;
        s.fitness = tag + i;
        s.sumMedianError = tag;
        serve::saveScoredSpec(s, os);
    }
    return os.str();
}

class ScopedFaults
{
  public:
    ScopedFaults()
    {
        auto &f = fault::FaultRegistry::instance();
        f.reset();
        f.setEnabled(true);
    }
    ~ScopedFaults()
    {
        auto &f = fault::FaultRegistry::instance();
        f.setEnabled(false);
        f.reset();
    }
};

TEST(IslandFaults, LeaseGrantRenewRefuseExpire)
{
    ScopedFaults faults;
    const IslandOptions opts = baseOpts(2);
    serve::IslandCoordinatorOptions copts;
    copts.leaseSeconds = 5.0;
    serve::IslandCoordinator c(opts, copts);

    // w1 claims island 0; a live lease refuses w2 but renews w1.
    EXPECT_TRUE(call(c, "island.join", {"0", "w1"})
                    .starts_with("ok config"));
    EXPECT_TRUE(call(c, "island.join", {"0", "w2"})
                    .starts_with("error"));
    EXPECT_EQ(call(c, "island.heartbeat", {"0", "w1", "2", "1"}),
              "ok lease 5000");
    EXPECT_EQ(call(c, "island.heartbeat", {"0", "w2", "2", "1"}),
              "ok lost");
    EXPECT_TRUE(c.expiredIslands().empty());

    const auto snapshot = c.leases();
    ASSERT_EQ(snapshot.size(), 2u);
    EXPECT_EQ(snapshot[0].owner, "w1");
    EXPECT_GT(snapshot[0].remainingSeconds, 0.0);
    EXPECT_EQ(snapshot[0].generation, 2u);
    EXPECT_EQ(snapshot[1].owner, "");

    // Age the monotonic clock past the lease: the island expires
    // (island 1 does not — it was never claimed) and becomes
    // claimable by a standby; the original owner is then fenced.
    ASSERT_TRUE(fault::FaultRegistry::instance().armSpec(
        "island.lease.expire.skew:skew=30"));
    const auto expired = c.expiredIslands();
    ASSERT_EQ(expired.size(), 1u);
    EXPECT_EQ(expired[0], 0u);
    EXPECT_TRUE(c.expiredIslands().empty()); // drained exactly once

    EXPECT_TRUE(call(c, "island.join", {"0", "w2"})
                    .starts_with("ok config"));
    EXPECT_EQ(call(c, "island.heartbeat", {"0", "w1", "3", "1"}),
              "ok lost");
    fault::FaultRegistry::instance().disarm(
        "island.lease.expire.skew");
    EXPECT_EQ(call(c, "island.heartbeat", {"0", "w2", "1", "1"}),
              "ok lease 5000");

    const auto s = c.stats();
    EXPECT_EQ(s.joins, 2u);
    EXPECT_EQ(s.leaseExpiries, 1u);
    EXPECT_EQ(s.staleHeartbeats, 2u);
    EXPECT_GE(s.joinsRefused, 1u);
}

TEST(IslandFaults, GracefulReclaimAfterUnclaimedExpiry)
{
    ScopedFaults faults;
    serve::IslandCoordinatorOptions copts;
    copts.leaseSeconds = 5.0;
    serve::IslandCoordinator c(baseOpts(1), copts);

    ASSERT_TRUE(call(c, "island.join", {"0", "w1"})
                    .starts_with("ok config"));
    ASSERT_TRUE(fault::FaultRegistry::instance().armSpec(
        "island.lease.expire.skew:skew=30"));
    ASSERT_EQ(c.expiredIslands().size(), 1u);
    fault::FaultRegistry::instance().disarm(
        "island.lease.expire.skew");

    // Nobody claimed the lapsed island: the owner's next beat
    // reclaims it instead of killing the run.
    EXPECT_TRUE(call(c, "island.heartbeat", {"0", "w1", "4", "2"})
                    .starts_with("ok lease"));
    EXPECT_EQ(c.stats().rejoins, 1u);
    EXPECT_EQ(c.stats().leaseExpiries, 1u);
}

TEST(IslandFaults, AutoJoinElasticMembership)
{
    const IslandOptions opts = baseOpts(3);
    serve::IslandCoordinator c(opts);

    // Lowest unowned island first; re-join is idempotent.
    EXPECT_TRUE(call(c, "island.join", {"auto", "w1"})
                    .starts_with("ok config 0 "));
    EXPECT_TRUE(call(c, "island.join", {"auto", "w1"})
                    .starts_with("ok config 0 "));
    EXPECT_TRUE(call(c, "island.join", {"auto", "w2"})
                    .starts_with("ok config 1 "));
    EXPECT_TRUE(call(c, "island.join", {"auto", "w3"})
                    .starts_with("ok config 2 "));
    // Saturated: a late-arriving standby is told to stand down.
    EXPECT_EQ(call(c, "island.join", {"auto", "w4"}), "ok none");

    const auto s = c.stats();
    EXPECT_EQ(s.joins, 3u);
    EXPECT_EQ(s.rejoins, 1u);
    EXPECT_EQ(s.joinsRefused, 1u);
}

TEST(IslandFaults, AsyncDeliveryPinnedFirstWins)
{
    IslandOptions opts = baseOpts(2);
    opts.asyncMigration = true;
    serve::IslandCoordinator c(opts);

    const std::string b0g2 = migrantBody(10.0);
    const std::string b1g2 = migrantBody(20.0);
    const std::string b1g4 = migrantBody(40.0);
    const std::string b0g4 = migrantBody(30.0);

    // Island 0 reaches barrier 2 first; its source (island 1) has
    // posted nothing, so it proceeds empty-handed — and that choice
    // is pinned.
    EXPECT_EQ(call(c, "island.migrate", {"0", "2", "2"}, b0g2),
              "ok migrants 0\n");
    // Island 1 arrives later and receives island 0's fresh barrier.
    EXPECT_EQ(call(c, "island.migrate", {"1", "2", "2"}, b1g2),
              "ok migrants 2\n" + b0g2);
    // Island 1 races ahead to barrier 4 before island 0 gets there:
    // it is served the newest available post — the stale barrier 2.
    EXPECT_EQ(call(c, "island.migrate", {"1", "4", "2"}, b1g4),
              "ok migrants 2\n" + b0g2);
    // Island 0 catches up; its barrier-4 delivery sees island 1's
    // barrier-4 post.
    EXPECT_EQ(call(c, "island.migrate", {"0", "4", "2"}, b0g4),
              "ok migrants 2\n" + b1g4);

    // A crashed-and-resumed island 1 replays its barriers: every
    // delivery is pinned, so it receives exactly what the original
    // consumed — island 0's barrier-4 post, though newer, must NOT
    // leak into the replay.
    EXPECT_EQ(call(c, "island.migrate", {"1", "2", "2"}, b1g2),
              "ok migrants 2\n" + b0g2);
    EXPECT_EQ(call(c, "island.migrate", {"1", "4", "2"}, b1g4),
              "ok migrants 2\n" + b0g2);
    // Island 0's pinned empty delivery stays empty on replay too.
    EXPECT_EQ(call(c, "island.migrate", {"0", "2", "2"}, b0g2),
              "ok migrants 0\n");

    const auto s = c.stats();
    EXPECT_EQ(s.migratePosts, 4u);
    EXPECT_EQ(s.duplicatePosts, 3u);
    EXPECT_EQ(s.asyncStale, 2u); // original + replayed stale serve
    EXPECT_EQ(s.asyncEmpty, 2u); // original + replayed empty serve
}

TEST(IslandFaults, JournalSurvivesCoordinatorRestart)
{
    const std::string dir =
        ::testing::TempDir() + "hwsw-island-journal";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    IslandOptions opts = baseOpts(2);
    opts.asyncMigration = true;
    serve::IslandCoordinatorOptions copts;
    copts.journalPath = dir + "/coordination.journal";

    const std::string b0g2 = migrantBody(10.0);
    const std::string b1g4 = migrantBody(40.0);
    {
        serve::IslandCoordinator c(opts, copts);
        EXPECT_EQ(call(c, "island.migrate", {"0", "2", "2"}, b0g2),
                  "ok migrants 0\n");
        EXPECT_EQ(call(c, "island.migrate", {"1", "4", "2"}, b1g4),
                  "ok migrants 2\n" + b0g2);
    }

    // A restarted coordinator restores outboxes and pinned
    // deliveries from the journal: replays answer bit-identically
    // and re-posts are recognized as duplicates.
    serve::IslandCoordinator c(opts, copts);
    EXPECT_GT(c.stats().journalRecords, 0u);
    EXPECT_EQ(call(c, "island.migrate", {"1", "4", "2"}, b1g4),
              "ok migrants 2\n" + b0g2);
    EXPECT_EQ(call(c, "island.migrate", {"0", "2", "2"}, b0g2),
              "ok migrants 0\n");
    EXPECT_EQ(c.stats().migratePosts, 0u);
    EXPECT_EQ(c.stats().duplicatePosts, 2u);

    std::filesystem::remove_all(dir);
}

TEST(IslandFaults, HeartbeatDropIsHarmlessWhileLeaseHolds)
{
    ScopedFaults faults;
    const Dataset data = detData(40, 51);
    const IslandOptions opts = baseOpts(2);
    const GaResult reference = runIslandModel(data, opts);

    // Every other beat vanishes in flight; with beats far inside
    // the lease the run must neither expire a lease nor diverge.
    ASSERT_TRUE(fault::FaultRegistry::instance().armSpec(
        "island.heartbeat.drop:nth=2"));

    auto registry = std::make_shared<serve::ModelRegistry>();
    serve::IslandCoordinator coordinator(opts);
    serve::Server server(registry, {}, nullptr, &coordinator);
    server.start();

    std::vector<std::thread> workers;
    for (std::size_t i = 0; i < opts.islands; ++i) {
        workers.emplace_back([&, i] {
            serve::IslandWorkerOptions w;
            w.port = server.port();
            w.island = i;
            w.pollSeconds = 0.005;
            w.heartbeatSeconds = 0.01;
            serve::runIslandWorker(data, opts, w);
        });
    }
    for (std::thread &t : workers)
        t.join();

    ASSERT_TRUE(coordinator.waitForReports(30.0));
    const GaResult faulted = coordinator.result();
    EXPECT_EQ(coordinator.stats().leaseExpiries, 0u);
    EXPECT_GT(fault::FaultRegistry::instance()
                  .stats("island.heartbeat.drop")
                  .trips,
              0u);
    server.stop();
    expectSameResult(reference, faulted, "dropped heartbeats");
}

TEST(IslandFaults, StallExpiresLeaseAndStandbyTakesOver)
{
    ScopedFaults faults;
    const Dataset data = detData(40, 52);
    IslandOptions opts = baseOpts(2);
    const GaResult reference = runIslandModel(data, opts);

    const std::string dir = ::testing::TempDir() + "hwsw-stall";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    opts.checkpointDir = dir;

    auto registry = std::make_shared<serve::ModelRegistry>();
    serve::IslandCoordinatorOptions copts;
    copts.leaseSeconds = 0.25;
    serve::IslandCoordinator coordinator(opts, copts);
    serve::Server server(registry, {}, nullptr, &coordinator);
    server.start();

    // Island 0's worker hangs — evolve loop AND heartbeat loop, the
    // full process — for far longer than its lease.
    ASSERT_TRUE(fault::FaultRegistry::instance().armSpec(
        "island.worker.stall.0:skew=1.5"));

    const auto run_worker = [&](std::size_t island) {
        serve::IslandWorkerOptions w;
        w.port = server.port();
        w.island = island;
        w.pollSeconds = 0.005;
        try {
            serve::runIslandWorker(data, opts, w);
        } catch (const FatalError &) {
            // Fenced zombie ("ok lost") — expected for the stalled
            // original when the standby reclaimed its island.
        }
    };

    std::thread worker0(run_worker, 0);
    std::thread worker1(run_worker, 1);

    // Supervisor: watch leases, not processes. When the stalled
    // worker's lease lapses, heal the fault domain and hand the
    // island to a standby, which resumes from the checkpoint.
    std::atomic<bool> done{false};
    std::atomic<bool> respawned{false};
    std::thread standby;
    std::thread supervisor([&] {
        while (!done.load()) {
            for (const std::size_t island :
                 coordinator.expiredIslands()) {
                if (island == 0 && !respawned.exchange(true)) {
                    fault::FaultRegistry::instance().disarm(
                        "island.worker.stall.0");
                    standby = std::thread(run_worker, 0);
                }
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    });

    ASSERT_TRUE(coordinator.waitForReports(30.0));
    const GaResult recovered = coordinator.result();
    done.store(true);
    supervisor.join();
    worker0.join();
    worker1.join();
    if (standby.joinable())
        standby.join();
    server.stop();

    EXPECT_TRUE(respawned.load());
    EXPECT_GE(coordinator.stats().leaseExpiries, 1u);
    // The takeover is invisible in the outcome: sync-mode bit
    // determinism holds through stall + lease expiry + standby.
    expectSameResult(reference, recovered, "stall takeover");
    std::filesystem::remove_all(dir);
}

TEST(IslandFaults, AsyncElasticSingleWorkerDrainsAllIslands)
{
    const Dataset data = detData(40, 53);
    IslandOptions opts = baseOpts(2);
    opts.asyncMigration = true;

    auto registry = std::make_shared<serve::ModelRegistry>();
    serve::IslandCoordinator coordinator(opts);
    serve::Server server(registry, {}, nullptr, &coordinator);
    server.start();

    // One elastic worker, no barriers: async migration never blocks
    // on an unposted source, so a single auto worker can drain every
    // island sequentially — impossible in sync mode.
    std::size_t served = 0;
    for (;;) {
        serve::IslandWorkerOptions w;
        w.port = server.port();
        w.autoIsland = true;
        w.pollSeconds = 0.005;
        const auto report = serve::runIslandWorker(data, opts, w);
        if (!report)
            break;
        EXPECT_EQ(report->history.size(), opts.ga.generations);
        ++served;
    }
    EXPECT_EQ(served, opts.islands);

    ASSERT_TRUE(coordinator.waitForReports(5.0));
    const GaResult result = coordinator.result();
    EXPECT_EQ(result.history.size(), opts.ga.generations);
    EXPECT_EQ(result.population.size(),
              opts.islands * opts.ga.populationSize);

    const auto s = coordinator.stats();
    // The first island found no migrants (its source hadn't posted);
    // the second fed off the first's retained posts.
    EXPECT_GE(s.asyncEmpty, 1u);
    EXPECT_GE(s.migrantsServed, 1u);
    server.stop();
}

TEST(IslandFaults, SyncReportsSurviveCoordinatorRestart)
{
    const Dataset data = detData(40, 54);
    const IslandOptions opts = baseOpts(2);

    const std::string dir = ::testing::TempDir() + "hwsw-coord-jrnl";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    serve::IslandCoordinatorOptions copts;
    copts.journalPath = dir + "/coordination.journal";

    GaResult first;
    {
        auto registry = std::make_shared<serve::ModelRegistry>();
        serve::IslandCoordinator coordinator(opts, copts);
        serve::Server server(registry, {}, nullptr, &coordinator);
        server.start();
        std::vector<std::thread> workers;
        for (std::size_t i = 0; i < opts.islands; ++i) {
            workers.emplace_back([&, i] {
                serve::IslandWorkerOptions w;
                w.port = server.port();
                w.island = i;
                w.pollSeconds = 0.005;
                serve::runIslandWorker(data, opts, w);
            });
        }
        for (std::thread &t : workers)
            t.join();
        ASSERT_TRUE(coordinator.waitForReports(30.0));
        first = coordinator.result();
        server.stop();
    }

    // The journal carries the full rendezvous state: a restarted
    // coordinator has every report and yields the same merge without
    // any worker re-running.
    serve::IslandCoordinator coordinator(opts, copts);
    ASSERT_TRUE(coordinator.waitForReports(0.1));
    expectSameResult(first, coordinator.result(),
                     "coordinator restart");
    EXPECT_GT(coordinator.stats().journalRecords, 0u);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace hwsw::core
