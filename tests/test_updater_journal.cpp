// Write-ahead journal tests for the online updater: checksummed
// record round trips, corruption and torn-tail handling, the
// acknowledged-implies-journaled refusal path under injected append
// faults, and the kill-9 guarantee — replaying a dead process's
// journal into a fresh manager rebuilds a model identical to the
// uninterrupted run's. Part of the tier15_fault aggregate.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault/fault.hpp"
#include "core/manager.hpp"
#include "core/serialize.hpp"
#include "serve/journal.hpp"
#include "serve/registry.hpp"
#include "serve/updater.hpp"

namespace hwsw::serve {
namespace {

class UpdaterJournal : public ::testing::Test
{
  protected:
    void SetUp() override { clean(); }
    void TearDown() override
    {
        clean();
        std::remove(path().c_str());
    }

    static void clean()
    {
        fault::FaultRegistry::instance().reset();
        fault::FaultRegistry::instance().setEnabled(false);
    }

    static std::string path()
    {
        return testing::TempDir() + "hwsw_test_journal.log";
    }
};

core::ProfileRecord
gnarlyRecord()
{
    core::ProfileRecord rec;
    rec.app = "novel";
    rec.shardIndex = 3;
    rec.vars[0] = 1.0 / 3.0;
    rec.vars[1] = 1e-300;
    rec.vars[5] = -2.5e17;
    rec.vars[core::kNumSw] = 8;
    rec.perf = 0.1 + 1.0 / 7.0;
    return rec;
}

void
expectRecordsEqual(const core::ProfileRecord &a,
                   const core::ProfileRecord &b)
{
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.shardIndex, b.shardIndex);
    for (std::size_t i = 0; i < core::kNumVars; ++i)
        EXPECT_EQ(a.vars[i], b.vars[i]) << "var " << i;
    EXPECT_EQ(a.perf, b.perf);
}

TEST_F(UpdaterJournal, RecordRoundTripsBitExactly)
{
    const core::ProfileRecord rec = gnarlyRecord();
    const std::string line = ObservationJournal::formatRecord(rec);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    core::ProfileRecord back;
    ASSERT_TRUE(ObservationJournal::parseRecord(line, back)) << line;
    expectRecordsEqual(back, rec);
}

TEST_F(UpdaterJournal, CorruptRecordsAreRejected)
{
    const std::string line =
        ObservationJournal::formatRecord(gnarlyRecord());
    core::ProfileRecord rec;

    // Flip one payload character: the checksum catches it.
    std::string flipped = line;
    flipped[10] = flipped[10] == '7' ? '8' : '7';
    EXPECT_FALSE(ObservationJournal::parseRecord(flipped, rec));

    // Tamper with the checksum itself.
    std::string badsum = line;
    badsum.back() = badsum.back() == 'a' ? 'b' : 'a';
    EXPECT_FALSE(ObservationJournal::parseRecord(badsum, rec));

    // Truncations and junk.
    EXPECT_FALSE(ObservationJournal::parseRecord(
        line.substr(0, line.size() / 2), rec));
    EXPECT_FALSE(ObservationJournal::parseRecord("", rec));
    EXPECT_FALSE(ObservationJournal::parseRecord("obs", rec));
    EXPECT_FALSE(
        ObservationJournal::parseRecord("garbage #0123456789abcdef",
                                        rec));
}

TEST_F(UpdaterJournal, ReplayStopsAtTornTail)
{
    std::vector<core::ProfileRecord> recs;
    for (int i = 0; i < 3; ++i) {
        core::ProfileRecord r = gnarlyRecord();
        r.shardIndex = static_cast<std::size_t>(i);
        r.perf = 1.0 + i;
        recs.push_back(r);
    }
    const std::string torn =
        ObservationJournal::formatRecord(gnarlyRecord());
    {
        std::ofstream os(path());
        for (const auto &r : recs)
            os << ObservationJournal::formatRecord(r) << '\n';
        // The crash artifact: a record that lost power mid-append.
        os << torn.substr(0, torn.size() / 2);
    }

    std::vector<core::ProfileRecord> seen;
    const std::size_t n = ObservationJournal::replay(
        path(), [&](const core::ProfileRecord &r) {
            seen.push_back(r);
        });
    EXPECT_EQ(n, 3u);
    ASSERT_EQ(seen.size(), 3u);
    for (std::size_t i = 0; i < seen.size(); ++i)
        expectRecordsEqual(seen[i], recs[i]);

    // A missing journal replays cleanly as zero records.
    EXPECT_EQ(ObservationJournal::replay(
                  path() + ".absent",
                  [](const core::ProfileRecord &) { FAIL(); }),
              0u);
}

TEST_F(UpdaterJournal, TornAppendFailsAndPriorRecordsSurvive)
{
    ObservationJournal journal(path());
    ASSERT_TRUE(journal.open());
    ASSERT_TRUE(journal.append(gnarlyRecord()));
    EXPECT_EQ(journal.appended(), 1u);

    std::string err;
    ASSERT_TRUE(fault::FaultRegistry::instance().armSpec(
        "journal.append.torn:once", &err))
        << err;
    fault::FaultRegistry::instance().setEnabled(true);

    core::ProfileRecord second = gnarlyRecord();
    second.perf = 99.0;
    EXPECT_FALSE(journal.append(second, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(journal.appended(), 1u);
    journal.close();
    clean();

    // The torn half-line ends replay; the first record is intact.
    std::vector<core::ProfileRecord> seen;
    EXPECT_EQ(ObservationJournal::replay(
                  path(),
                  [&](const core::ProfileRecord &r) {
                      seen.push_back(r);
                  }),
              1u);
    ASSERT_EQ(seen.size(), 1u);
    expectRecordsEqual(seen[0], gnarlyRecord());
}

TEST_F(UpdaterJournal, ReplayRebuildsModelIdenticalToUninterruptedRun)
{
    // Identical bootstraps for three updater lifetimes: A runs
    // uninterrupted (no journal), B journals every accepted
    // observation and then "crashes" (its manager state is simply
    // dropped), C is the restarted process that replays B's journal
    // into a fresh manager. A, B, and C must all publish the same
    // updated model.
    core::Dataset boot;
    Rng rng(7);
    for (const char *app : {"a1", "a2"}) {
        for (int i = 0; i < 60; ++i) {
            core::ProfileRecord r;
            r.app = app;
            r.vars[1] = (app[1] == '1' ? 0.05 : 0.15) +
                rng.nextUniform(0.0, 0.1);
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[core::kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 4.0 * r.vars[1] + 2.0 * r.vars[6] +
                3.0 / r.vars[core::kNumSw];
            boot.add(r);
        }
    }
    core::GaOptions ga;
    ga.populationSize = 10;
    ga.generations = 4;
    ga.numThreads = 1;
    ga.seed = 5;
    core::ManagerOptions mo;
    mo.profilesForUpdate = 6;
    mo.updateGenerations = 4;

    const auto makeManager = [&] {
        auto m = std::make_unique<core::ModelManager>(boot, ga, mo);
        m->bootstrapModel();
        return m;
    };

    // Out-of-band observations from one novel application — enough
    // to trigger exactly one re-specification.
    std::vector<core::ProfileRecord> obs;
    for (int i = 0; i < 8; ++i) {
        core::ProfileRecord r;
        r.app = "novel";
        r.vars[1] = 0.9 + rng.nextUniform(0.0, 0.1);
        r.vars[6] = rng.nextUniform(0.1, 0.6);
        r.vars[core::kNumSw] = 1 << rng.nextInt(4);
        r.perf = 0.5 + 4.0 * r.vars[1] + 2.0 * r.vars[6] +
            3.0 / r.vars[core::kNumSw];
        obs.push_back(r);
    }

    // A: the uninterrupted reference.
    auto regA = std::make_shared<ModelRegistry>();
    {
        auto mgr = makeManager();
        regA->publish("default", mgr->model(), "bootstrap");
        OnlineUpdater a(std::move(mgr), regA, "default");
        a.start();
        for (const auto &r : obs)
            ASSERT_TRUE(a.enqueue(r));
        a.drain();
        a.stop();
        EXPECT_GE(a.stats().updates, 1u);
    }
    ASSERT_GT(regA->lookup("default")->version, 1u);

    // B: journaled, then killed (scope exit drops all state; only
    // the journal file survives).
    auto regB = std::make_shared<ModelRegistry>();
    {
        auto mgr = makeManager();
        regB->publish("default", mgr->model(), "bootstrap");
        OnlineUpdater b(std::move(mgr), regB, "default");
        auto journal = std::make_unique<ObservationJournal>(path());
        ASSERT_TRUE(journal->open());
        b.attachJournal(std::move(journal));
        b.start();
        for (const auto &r : obs)
            ASSERT_TRUE(b.enqueue(r));
        b.drain();
        b.stop();
    }

    // C: the restart. Fresh manager, replayed journal.
    auto regC = std::make_shared<ModelRegistry>();
    auto mgrC = makeManager();
    regC->publish("default", mgrC->model(), "bootstrap");
    OnlineUpdater c(std::move(mgrC), regC, "default");
    c.start();
    EXPECT_EQ(c.replayJournal(path()), obs.size());
    const UpdaterStats st = c.stats();
    EXPECT_EQ(st.replayed, obs.size());
    EXPECT_GE(st.updates, 1u);
    c.stop();

    const std::string modelA =
        core::saveModelToString(regA->lookup("default")->model);
    const std::string modelB =
        core::saveModelToString(regB->lookup("default")->model);
    const std::string modelC =
        core::saveModelToString(regC->lookup("default")->model);
    EXPECT_EQ(modelB, modelA) << "journaling changed the run";
    EXPECT_EQ(modelC, modelA) << "replay diverged from the live run";
    EXPECT_EQ(regC->lookup("default")->version,
              regA->lookup("default")->version);
}

TEST_F(UpdaterJournal, FailedAppendRefusesObservation)
{
    // Acknowledged implies journaled: when the WAL append fails the
    // updater must refuse the observation instead of accepting work
    // it could lose.
    core::Dataset boot;
    Rng rng(9);
    for (const char *app : {"a1", "a2"}) {
        for (int i = 0; i < 60; ++i) {
            core::ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[core::kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 2.0 * r.vars[6] +
                4.0 / r.vars[core::kNumSw];
            boot.add(r);
        }
    }
    core::GaOptions ga;
    ga.populationSize = 8;
    ga.generations = 2;
    ga.numThreads = 1;
    ga.seed = 5;
    auto mgr = std::make_unique<core::ModelManager>(boot, ga);
    mgr->bootstrapModel();

    auto reg = std::make_shared<ModelRegistry>();
    reg->publish("default", mgr->model(), "bootstrap");
    OnlineUpdater u(std::move(mgr), reg, "default");
    auto journal = std::make_unique<ObservationJournal>(path());
    ASSERT_TRUE(journal->open());
    u.attachJournal(std::move(journal));
    u.start();

    core::ProfileRecord rec;
    rec.app = "x";
    rec.vars[6] = 0.3;
    rec.vars[core::kNumSw] = 4;
    rec.perf = 2.0;
    ASSERT_TRUE(u.enqueue(rec));

    std::string err;
    ASSERT_TRUE(fault::FaultRegistry::instance().armSpec(
        "journal.append.torn:once", &err))
        << err;
    fault::FaultRegistry::instance().setEnabled(true);
    EXPECT_FALSE(u.enqueue(rec));
    clean();

    ASSERT_TRUE(u.enqueue(rec)); // recovers once the fault clears
    u.drain();
    u.stop();

    const UpdaterStats st = u.stats();
    EXPECT_EQ(st.journalErrors, 1u);
    EXPECT_EQ(st.rejected, 1u);
    EXPECT_EQ(st.observed, 2u);
}

} // namespace
} // namespace hwsw::serve
