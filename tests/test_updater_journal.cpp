// Write-ahead journal tests for the online updater: checksummed
// record round trips, corruption and torn-tail handling, the
// acknowledged-implies-journaled refusal path under injected append
// faults, and the kill-9 guarantee — replaying a dead process's
// journal into a fresh manager rebuilds a model identical to the
// uninterrupted run's. Part of the tier15_fault aggregate.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault/fault.hpp"
#include "core/manager.hpp"
#include "core/serialize.hpp"
#include "serve/journal.hpp"
#include "serve/registry.hpp"
#include "serve/updater.hpp"

namespace hwsw::serve {
namespace {

class UpdaterJournal : public ::testing::Test
{
  protected:
    void SetUp() override { clean(); }
    void TearDown() override
    {
        clean();
        std::remove(path().c_str());
    }

    static void clean()
    {
        fault::FaultRegistry::instance().reset();
        fault::FaultRegistry::instance().setEnabled(false);
    }

    static std::string path()
    {
        return testing::TempDir() + "hwsw_test_journal.log";
    }
};

core::ProfileRecord
gnarlyRecord()
{
    core::ProfileRecord rec;
    rec.app = "novel";
    rec.shardIndex = 3;
    rec.vars[0] = 1.0 / 3.0;
    rec.vars[1] = 1e-300;
    rec.vars[5] = -2.5e17;
    rec.vars[core::kNumSw] = 8;
    rec.perf = 0.1 + 1.0 / 7.0;
    return rec;
}

void
expectRecordsEqual(const core::ProfileRecord &a,
                   const core::ProfileRecord &b)
{
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.shardIndex, b.shardIndex);
    for (std::size_t i = 0; i < core::kNumVars; ++i)
        EXPECT_EQ(a.vars[i], b.vars[i]) << "var " << i;
    EXPECT_EQ(a.perf, b.perf);
}

TEST_F(UpdaterJournal, RecordRoundTripsBitExactly)
{
    const core::ProfileRecord rec = gnarlyRecord();
    const std::string line = ObservationJournal::formatRecord(rec);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    core::ProfileRecord back;
    ASSERT_TRUE(ObservationJournal::parseRecord(line, back)) << line;
    expectRecordsEqual(back, rec);
}

TEST_F(UpdaterJournal, CorruptRecordsAreRejected)
{
    const std::string line =
        ObservationJournal::formatRecord(gnarlyRecord());
    core::ProfileRecord rec;

    // Flip one payload character: the checksum catches it.
    std::string flipped = line;
    flipped[10] = flipped[10] == '7' ? '8' : '7';
    EXPECT_FALSE(ObservationJournal::parseRecord(flipped, rec));

    // Tamper with the checksum itself.
    std::string badsum = line;
    badsum.back() = badsum.back() == 'a' ? 'b' : 'a';
    EXPECT_FALSE(ObservationJournal::parseRecord(badsum, rec));

    // Truncations and junk.
    EXPECT_FALSE(ObservationJournal::parseRecord(
        line.substr(0, line.size() / 2), rec));
    EXPECT_FALSE(ObservationJournal::parseRecord("", rec));
    EXPECT_FALSE(ObservationJournal::parseRecord("obs", rec));
    EXPECT_FALSE(
        ObservationJournal::parseRecord("garbage #0123456789abcdef",
                                        rec));
}

TEST_F(UpdaterJournal, ReplayStopsAtTornTail)
{
    std::vector<core::ProfileRecord> recs;
    for (int i = 0; i < 3; ++i) {
        core::ProfileRecord r = gnarlyRecord();
        r.shardIndex = static_cast<std::size_t>(i);
        r.perf = 1.0 + i;
        recs.push_back(r);
    }
    const std::string torn =
        ObservationJournal::formatRecord(gnarlyRecord());
    {
        std::ofstream os(path());
        for (const auto &r : recs)
            os << ObservationJournal::formatRecord(r) << '\n';
        // The crash artifact: a record that lost power mid-append.
        os << torn.substr(0, torn.size() / 2);
    }

    std::vector<core::ProfileRecord> seen;
    const std::size_t n = ObservationJournal::replay(
        path(), [&](const core::ProfileRecord &r) {
            seen.push_back(r);
        });
    EXPECT_EQ(n, 3u);
    ASSERT_EQ(seen.size(), 3u);
    for (std::size_t i = 0; i < seen.size(); ++i)
        expectRecordsEqual(seen[i], recs[i]);

    // A missing journal replays cleanly as zero records.
    EXPECT_EQ(ObservationJournal::replay(
                  path() + ".absent",
                  [](const core::ProfileRecord &) { FAIL(); }),
              0u);
}

TEST_F(UpdaterJournal, TornAppendRollsBackSoLaterAppendsSurviveReplay)
{
    ObservationJournal journal(path());
    ASSERT_TRUE(journal.open());
    ASSERT_TRUE(journal.append(gnarlyRecord()));
    EXPECT_EQ(journal.appended(), 1u);

    std::string err;
    ASSERT_TRUE(fault::FaultRegistry::instance().armSpec(
        "journal.append.torn:once", &err))
        << err;
    fault::FaultRegistry::instance().setEnabled(true);

    core::ProfileRecord second = gnarlyRecord();
    second.perf = 99.0;
    EXPECT_FALSE(journal.append(second, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(journal.failed());
    EXPECT_EQ(journal.appended(), 1u);
    clean();

    // The torn line was truncated away, so an append accepted after
    // the failure is NOT stranded behind an unparseable tail: replay
    // must deliver it, or "acknowledged implies journaled" breaks
    // for everything after the first transient disk error.
    core::ProfileRecord third = gnarlyRecord();
    third.perf = 123.0;
    ASSERT_TRUE(journal.append(third, &err)) << err;
    journal.close();

    std::vector<core::ProfileRecord> seen;
    EXPECT_EQ(ObservationJournal::replay(
                  path(),
                  [&](const core::ProfileRecord &r) {
                      seen.push_back(r);
                  }),
              2u);
    ASSERT_EQ(seen.size(), 2u);
    expectRecordsEqual(seen[0], gnarlyRecord());
    expectRecordsEqual(seen[1], third);
}

TEST_F(UpdaterJournal, UnrollbackableTornAppendDisablesJournal)
{
    ObservationJournal journal(path());
    ASSERT_TRUE(journal.open());
    ASSERT_TRUE(journal.append(gnarlyRecord()));

    std::string err;
    ASSERT_TRUE(fault::FaultRegistry::instance().armSpec(
        "journal.append.torn:once", &err))
        << err;
    ASSERT_TRUE(fault::FaultRegistry::instance().armSpec(
        "journal.rollback.fail:once", &err))
        << err;
    fault::FaultRegistry::instance().setEnabled(true);

    EXPECT_FALSE(journal.append(gnarlyRecord(), &err));
    EXPECT_TRUE(journal.failed());
    clean();

    // The torn line is stuck mid-file now; any further accepted
    // append would be silently lost at replay, so the journal must
    // refuse everything until a restart re-replays what is left.
    EXPECT_FALSE(journal.append(gnarlyRecord(), &err));
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(journal.appended(), 1u);

    // Everything before the torn line is still trusted.
    EXPECT_EQ(ObservationJournal::replay(
                  path(), [](const core::ProfileRecord &) {}),
              1u);
}

TEST_F(UpdaterJournal, CompactionDropsCoveredPrefixAcrossCrashWindows)
{
    ObservationJournal journal(path());
    ASSERT_TRUE(journal.open());
    EXPECT_EQ(journal.epoch(), 0u);

    std::vector<core::ProfileRecord> recs;
    for (int i = 0; i < 5; ++i) {
        core::ProfileRecord r = gnarlyRecord();
        r.perf = 1.0 + i;
        recs.push_back(r);
        ASSERT_TRUE(journal.append(r));
    }

    // A snapshot at epoch 0 covering the first three records.
    // Crash window 1: snapshot durable, compaction lost — replay
    // must skip exactly the covered prefix.
    std::vector<core::ProfileRecord> seen;
    auto status = ObservationJournal::replayFrom(
        path(),
        [&](const core::ProfileRecord &r) { seen.push_back(r); }, 0,
        3);
    EXPECT_EQ(status.epoch, 0u);
    EXPECT_EQ(status.skipped, 3u);
    ASSERT_EQ(status.replayed, 2u);
    expectRecordsEqual(seen[0], recs[3]);
    expectRecordsEqual(seen[1], recs[4]);

    // The compaction the snapshot authorized.
    std::string err;
    ASSERT_TRUE(journal.compact(3, &err)) << err;
    EXPECT_EQ(journal.epoch(), 1u);

    // Crash window 2: compaction durable — the covered prefix is
    // gone from the file, and the stale snapshot's count must not
    // skip live records (epoch mismatch disables it).
    seen.clear();
    status = ObservationJournal::replayFrom(
        path(),
        [&](const core::ProfileRecord &r) { seen.push_back(r); }, 0,
        3);
    EXPECT_EQ(status.epoch, 1u);
    EXPECT_EQ(status.skipped, 0u);
    ASSERT_EQ(status.replayed, 2u);
    expectRecordsEqual(seen[0], recs[3]);
    expectRecordsEqual(seen[1], recs[4]);

    // Appends keep working on the compacted file, and a snapshot
    // taken at the new epoch skips its own covered prefix.
    core::ProfileRecord extra = gnarlyRecord();
    extra.perf = 42.0;
    ASSERT_TRUE(journal.append(extra, &err)) << err;
    seen.clear();
    status = ObservationJournal::replayFrom(
        path(),
        [&](const core::ProfileRecord &r) { seen.push_back(r); }, 1,
        2);
    EXPECT_EQ(status.skipped, 2u);
    ASSERT_EQ(status.replayed, 1u);
    expectRecordsEqual(seen[0], extra);

    // Dropping more records than the journal holds is refused.
    EXPECT_FALSE(journal.compact(99, &err));
}

TEST_F(UpdaterJournal, ReplayRebuildsModelIdenticalToUninterruptedRun)
{
    // Identical bootstraps for three updater lifetimes: A runs
    // uninterrupted (no journal), B journals every accepted
    // observation and then "crashes" (its manager state is simply
    // dropped), C is the restarted process that replays B's journal
    // into a fresh manager. A, B, and C must all publish the same
    // updated model.
    core::Dataset boot;
    Rng rng(7);
    for (const char *app : {"a1", "a2"}) {
        for (int i = 0; i < 60; ++i) {
            core::ProfileRecord r;
            r.app = app;
            r.vars[1] = (app[1] == '1' ? 0.05 : 0.15) +
                rng.nextUniform(0.0, 0.1);
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[core::kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 4.0 * r.vars[1] + 2.0 * r.vars[6] +
                3.0 / r.vars[core::kNumSw];
            boot.add(r);
        }
    }
    core::GaOptions ga;
    ga.populationSize = 10;
    ga.generations = 4;
    ga.numThreads = 1;
    ga.seed = 5;
    core::ManagerOptions mo;
    mo.profilesForUpdate = 6;
    mo.updateGenerations = 4;

    const auto makeManager = [&] {
        auto m = std::make_unique<core::ModelManager>(boot, ga, mo);
        m->bootstrapModel();
        return m;
    };

    // Out-of-band observations from one novel application — enough
    // to trigger exactly one re-specification.
    std::vector<core::ProfileRecord> obs;
    for (int i = 0; i < 8; ++i) {
        core::ProfileRecord r;
        r.app = "novel";
        r.vars[1] = 0.9 + rng.nextUniform(0.0, 0.1);
        r.vars[6] = rng.nextUniform(0.1, 0.6);
        r.vars[core::kNumSw] = 1 << rng.nextInt(4);
        r.perf = 0.5 + 4.0 * r.vars[1] + 2.0 * r.vars[6] +
            3.0 / r.vars[core::kNumSw];
        obs.push_back(r);
    }

    // A: the uninterrupted reference.
    auto regA = std::make_shared<ModelRegistry>();
    {
        auto mgr = makeManager();
        regA->publish("default", mgr->model(), "bootstrap");
        OnlineUpdater a(std::move(mgr), regA, "default");
        a.start();
        for (const auto &r : obs)
            ASSERT_TRUE(a.enqueue(r));
        a.drain();
        a.stop();
        EXPECT_GE(a.stats().updates, 1u);
    }
    ASSERT_GT(regA->lookup("default")->version, 1u);

    // B: journaled, then killed (scope exit drops all state; only
    // the journal file survives).
    auto regB = std::make_shared<ModelRegistry>();
    {
        auto mgr = makeManager();
        regB->publish("default", mgr->model(), "bootstrap");
        OnlineUpdater b(std::move(mgr), regB, "default");
        auto journal = std::make_unique<ObservationJournal>(path());
        ASSERT_TRUE(journal->open());
        b.attachJournal(std::move(journal));
        b.start();
        for (const auto &r : obs)
            ASSERT_TRUE(b.enqueue(r));
        b.drain();
        b.stop();
    }

    // C: the restart. Fresh manager, replayed journal.
    auto regC = std::make_shared<ModelRegistry>();
    auto mgrC = makeManager();
    regC->publish("default", mgrC->model(), "bootstrap");
    OnlineUpdater c(std::move(mgrC), regC, "default");
    c.start();
    EXPECT_EQ(c.replayJournal(path()), obs.size());
    const UpdaterStats st = c.stats();
    EXPECT_EQ(st.replayed, obs.size());
    EXPECT_GE(st.updates, 1u);
    c.stop();

    const std::string modelA =
        core::saveModelToString(regA->lookup("default")->model);
    const std::string modelB =
        core::saveModelToString(regB->lookup("default")->model);
    const std::string modelC =
        core::saveModelToString(regC->lookup("default")->model);
    EXPECT_EQ(modelB, modelA) << "journaling changed the run";
    EXPECT_EQ(modelC, modelA) << "replay diverged from the live run";
    EXPECT_EQ(regC->lookup("default")->version,
              regA->lookup("default")->version);
}

TEST_F(UpdaterJournal, FailedAppendRefusesObservation)
{
    // Acknowledged implies journaled: when the WAL append fails the
    // updater must refuse the observation instead of accepting work
    // it could lose.
    core::Dataset boot;
    Rng rng(9);
    for (const char *app : {"a1", "a2"}) {
        for (int i = 0; i < 60; ++i) {
            core::ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[core::kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 2.0 * r.vars[6] +
                4.0 / r.vars[core::kNumSw];
            boot.add(r);
        }
    }
    core::GaOptions ga;
    ga.populationSize = 8;
    ga.generations = 2;
    ga.numThreads = 1;
    ga.seed = 5;
    auto mgr = std::make_unique<core::ModelManager>(boot, ga);
    mgr->bootstrapModel();

    auto reg = std::make_shared<ModelRegistry>();
    reg->publish("default", mgr->model(), "bootstrap");
    OnlineUpdater u(std::move(mgr), reg, "default");
    auto journal = std::make_unique<ObservationJournal>(path());
    ASSERT_TRUE(journal->open());
    u.attachJournal(std::move(journal));
    u.start();

    core::ProfileRecord rec;
    rec.app = "x";
    rec.vars[6] = 0.3;
    rec.vars[core::kNumSw] = 4;
    rec.perf = 2.0;
    ASSERT_TRUE(u.enqueue(rec));

    std::string err;
    ASSERT_TRUE(fault::FaultRegistry::instance().armSpec(
        "journal.append.torn:once", &err))
        << err;
    fault::FaultRegistry::instance().setEnabled(true);
    EXPECT_FALSE(u.enqueue(rec));
    clean();

    ASSERT_TRUE(u.enqueue(rec)); // recovers once the fault clears
    u.drain();
    u.stop();

    const UpdaterStats st = u.stats();
    EXPECT_EQ(st.journalErrors, 1u);
    EXPECT_EQ(st.rejected, 1u);
    EXPECT_EQ(st.observed, 2u);

    // The durable record matches the acknowledgements: exactly the
    // two accepted observations replay, and the refused one left no
    // torn line to strand them behind.
    EXPECT_EQ(ObservationJournal::replay(
                  path(), [](const core::ProfileRecord &) {}),
              2u);
}

TEST_F(UpdaterJournal, SnapshotCompactionBoundsJournalAndRestartContinues)
{
    // The journal-growth fix end to end: B snapshots its manager on
    // publish and compacts the journal's covered prefix, then
    // "crashes". C restores the snapshot into a manager that never
    // ran the bootstrap search, replays only the uncovered journal
    // tail, and keeps observing. C must end bit-identical to the
    // uninterrupted run A.
    const std::string snap_path =
        testing::TempDir() + "hwsw_test_snapshot.txt";
    std::remove(snap_path.c_str());

    core::Dataset boot;
    Rng rng(7);
    for (const char *app : {"a1", "a2"}) {
        for (int i = 0; i < 60; ++i) {
            core::ProfileRecord r;
            r.app = app;
            r.vars[1] = (app[1] == '1' ? 0.05 : 0.15) +
                rng.nextUniform(0.0, 0.1);
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[core::kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 4.0 * r.vars[1] + 2.0 * r.vars[6] +
                3.0 / r.vars[core::kNumSw];
            boot.add(r);
        }
    }
    core::GaOptions ga;
    ga.populationSize = 10;
    ga.generations = 4;
    ga.numThreads = 1;
    ga.seed = 5;
    core::ManagerOptions mo;
    mo.profilesForUpdate = 6;
    mo.updateGenerations = 4;

    const auto makeManager = [&] {
        auto m = std::make_unique<core::ModelManager>(boot, ga, mo);
        m->bootstrapModel();
        return m;
    };
    const auto batch = [&](const char *app, double band) {
        std::vector<core::ProfileRecord> out;
        for (int i = 0; i < 8; ++i) {
            core::ProfileRecord r;
            r.app = app;
            r.vars[1] = band + rng.nextUniform(0.0, 0.1);
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[core::kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 4.0 * r.vars[1] + 2.0 * r.vars[6] +
                3.0 / r.vars[core::kNumSw];
            out.push_back(r);
        }
        return out;
    };
    const auto first = batch("novel", 0.9);
    const auto second = batch("novel2", 1.8);

    // A: uninterrupted, both batches, no journal.
    auto regA = std::make_shared<ModelRegistry>();
    {
        auto mgr = makeManager();
        regA->publish("default", mgr->model(), "bootstrap");
        OnlineUpdater a(std::move(mgr), regA, "default");
        a.start();
        for (const auto &r : first)
            ASSERT_TRUE(a.enqueue(r));
        for (const auto &r : second)
            ASSERT_TRUE(a.enqueue(r));
        a.drain();
        a.stop();
        ASSERT_GE(a.stats().updates, 2u)
            << "both batches must trigger a re-specification";
    }

    // B: journal + snapshots, first batch only, then crash.
    std::size_t covered_at_crash = 0;
    {
        auto mgr = makeManager();
        auto regB = std::make_shared<ModelRegistry>();
        regB->publish("default", mgr->model(), "bootstrap");
        OnlineUpdater b(std::move(mgr), regB, "default");
        auto journal = std::make_unique<ObservationJournal>(path());
        ASSERT_TRUE(journal->open());
        b.attachJournal(std::move(journal));
        b.enableSnapshots(snap_path);
        b.start();
        for (const auto &r : first)
            ASSERT_TRUE(b.enqueue(r));
        b.drain();
        b.stop();

        const UpdaterStats st = b.stats();
        ASSERT_GE(st.updates, 1u);
        EXPECT_GE(st.snapshots, 1u);
        EXPECT_GE(st.compactions, 1u);
        EXPECT_EQ(st.snapshotErrors, 0u);
        covered_at_crash = st.observed;
    }

    // Compaction bounded the file: only the records observed after
    // the last snapshot remain.
    const std::size_t tail = ObservationJournal::replay(
        path(), [](const core::ProfileRecord &) {});
    EXPECT_LT(tail, first.size());

    // C: restore the snapshot into a manager that never bootstrapped
    // (the restart must not pay the full GA again), replay the tail,
    // and continue with the second batch.
    auto mgrC = std::make_unique<core::ModelManager>(boot, ga, mo);
    ASSERT_FALSE(mgrC->ready());
    const auto snap = loadUpdaterSnapshot(snap_path, *mgrC);
    ASSERT_TRUE(snap.has_value());
    ASSERT_TRUE(mgrC->ready());

    auto regC = std::make_shared<ModelRegistry>();
    regC->publish("default", mgrC->model(), "restored");
    OnlineUpdater c(std::move(mgrC), regC, "default");
    auto journalC = std::make_unique<ObservationJournal>(path());
    ASSERT_TRUE(journalC->open());
    c.attachJournal(std::move(journalC));
    c.enableSnapshots(snap_path);
    c.start();

    const std::size_t replayed = c.replayJournal(path(), *snap);
    EXPECT_EQ(replayed, tail);
    EXPECT_EQ(replayed + snap->journalCovered, covered_at_crash)
        << "snapshot + tail must cover exactly what B observed";

    for (const auto &r : second)
        ASSERT_TRUE(c.enqueue(r));
    c.drain();
    c.stop();

    // The restarted pipeline lands exactly where A did.
    const std::string modelA =
        core::saveModelToString(regA->lookup("default")->model);
    const std::string modelC =
        core::saveModelToString(regC->lookup("default")->model);
    EXPECT_EQ(modelC, modelA)
        << "snapshot restore + tail replay diverged from the live run";

    std::remove(snap_path.c_str());
}

} // namespace
} // namespace hwsw::serve
