/**
 * @file
 * Shared fixtures for the serving-subsystem tests: a quickly fitted
 * model with a known spec, and random-but-plausible feature rows.
 */

#ifndef HWSW_TESTS_SERVE_TEST_UTIL_HPP
#define HWSW_TESTS_SERVE_TEST_UTIL_HPP

#include <cmath>

#include "common/rng.hpp"
#include "core/model.hpp"
#include "serve/engine.hpp"

namespace hwsw::serve::testutil {

inline core::Dataset
fitData(std::uint64_t seed)
{
    core::Dataset ds;
    Rng rng(seed);
    for (const char *app : {"a", "b"}) {
        for (int i = 0; i < 60; ++i) {
            core::ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[7] = std::exp(rng.nextGaussian() + 4.0);
            r.vars[core::kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 2.0 * r.vars[6] +
                     4.0 / r.vars[core::kNumSw];
            ds.add(r);
        }
    }
    return ds;
}

/** A small fitted model (seconds, not minutes, to fit). */
inline core::HwSwModel
makeModel(std::uint64_t seed = 1)
{
    core::ModelSpec s;
    s.genes[6] = 2;
    s.genes[7] = 4;
    s.genes[core::kNumSw] = 3;
    s.interactions = {
        {6, static_cast<std::uint16_t>(core::kNumSw)}};
    s.normalize();
    core::HwSwModel model;
    model.fit(s, fitData(seed));
    return model;
}

/** A feature row in the distribution makeModel() was fitted on. */
inline FeatureVector
makeRow(Rng &rng)
{
    FeatureVector row{};
    row[6] = rng.nextUniform(0.1, 0.6);
    row[7] = std::exp(rng.nextGaussian() + 4.0);
    row[core::kNumSw] = 1 << rng.nextInt(4);
    return row;
}

/** The record a row corresponds to (for predicting locally). */
inline core::ProfileRecord
rowRecord(const FeatureVector &row)
{
    core::ProfileRecord r;
    r.vars = row;
    r.perf = 1.0;
    return r;
}

} // namespace hwsw::serve::testutil

#endif // HWSW_TESTS_SERVE_TEST_UTIL_HPP
