// End-to-end closed-loop tuning: drift fires, a fresh model is
// published without pausing the loop, the actuator moves, and the
// adapted configuration beats the frozen one on the ground truth.
// Also the crash-recovery contract (a killed tuner resumes from
// snapshot + journal replay into exactly the state of an
// uninterrupted run) and the tune.poll.fail / tune.actuate.fail /
// clock.skew fault points. Part of the tier15_tune aggregate.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>

#include "common/fault/fault.hpp"
#include "tune/controller.hpp"
#include "tune/spmv_plant.hpp"

namespace hwsw::tune {
namespace {

class TuneLoop : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        fault::FaultRegistry::instance().reset();
        fault::FaultRegistry::instance().setEnabled(false);
    }
    void TearDown() override
    {
        fault::FaultRegistry::instance().reset();
        fault::FaultRegistry::instance().setEnabled(false);
    }

    /** Small, fully deterministic plant; drifts raefsky3 -> memplus. */
    static SpmvPlantOptions plantOptions(std::size_t drift_at)
    {
        SpmvPlantOptions o;
        o.scale = 0.02;
        o.simAccesses = 20 * 1000;
        o.driftAt = drift_at;
        return o;
    }

    /** 1-CPU-friendly search budgets; cadence 4. */
    static ControllerOptions loopOptions(const std::string &dir)
    {
        ControllerOptions o;
        o.journalDir = dir;
        o.cadence = 4;
        o.verifyWindow = 3;
        o.drift.window = 8;
        o.drift.minSamples = 4;
        o.drift.hysteresis = 2;
        o.ga.populationSize = 12;
        o.ga.generations = 4;
        o.ga.numThreads = 1;
        o.manager.profilesForUpdate = 8;
        o.manager.updateGenerations = 3;
        return o;
    }

    static std::string freshDir(const std::string &name)
    {
        const std::string dir = testing::TempDir() + name;
        std::filesystem::remove_all(dir);
        return dir;
    }

    struct LoopState
    {
        std::string detector;
        std::string manager;
        std::size_t candidate = 0;
        std::size_t step = 0;
        ControllerStats stats;
    };

    /** State that must be identical across crash/resume. */
    static LoopState captureState(const Controller &ctrl,
                                  const SpmvPlant &plant)
    {
        return {ctrl.detector().saveStateToString(),
                ctrl.manager().saveStateToString(),
                plant.currentCandidate(), ctrl.stepIndex(),
                ctrl.stats()};
    }

    static void expectSameState(const LoopState &a, const LoopState &b)
    {
        EXPECT_EQ(a.detector, b.detector);
        EXPECT_EQ(a.manager, b.manager);
        EXPECT_EQ(a.candidate, b.candidate);
        EXPECT_EQ(a.step, b.step);
        EXPECT_EQ(a.stats.drifts, b.stats.drifts);
        EXPECT_EQ(a.stats.respecs, b.stats.respecs);
        EXPECT_EQ(a.stats.plans, b.stats.plans);
        EXPECT_EQ(a.stats.actuations, b.stats.actuations);
        EXPECT_EQ(a.stats.rollbacks, b.stats.rollbacks);
        EXPECT_EQ(a.stats.verifications, b.stats.verifications);
        EXPECT_EQ(a.stats.firstDriftStep, b.stats.firstDriftStep);
        EXPECT_EQ(a.stats.lastActuationStep, b.stats.lastActuationStep);
    }
};

TEST_F(TuneLoop, SpmvAdaptsToDriftAndBeatsFrozenModel)
{
    SpmvPlant plant(plantOptions(16));
    Controller ctrl(plant, plant, loopOptions(""));
    ctrl.start(plant.bootstrapDataset());
    EXPECT_FALSE(ctrl.resumed());

    // Satellite contract: no online publish yet, so the generation
    // counters must read zero.
    {
        const serve::UpdaterStats st = ctrl.updater().stats();
        EXPECT_EQ(st.published, 0u);
        EXPECT_EQ(st.lastPublishedVersion, 0u);
        EXPECT_EQ(st.lastPublishUnixSeconds, 0.0);
        EXPECT_EQ(ctrl.modelAgeSeconds(), 0.0);
    }

    // Pre-drift: the initial placement settles on a block size for
    // raefsky3 (the frozen-model configuration).
    ASSERT_EQ(ctrl.run(16), 16u);
    const std::size_t frozen = plant.currentCandidate();
    EXPECT_EQ(ctrl.stats().drifts, 0u);

    // Post-drift: detection -> re-specification -> actuation.
    ASSERT_EQ(ctrl.run(40), 40u);
    ctrl.stop();

    const ControllerStats &st = ctrl.stats();
    EXPECT_GE(st.drifts, 1u);
    EXPECT_GE(st.firstDriftStep, 16u); // never before the drift
    EXPECT_GE(st.respecs, 1u);
    EXPECT_GE(st.actuations, 1u);
    ASSERT_NE(st.lastActuationStep, ControllerStats::kNone);
    EXPECT_GT(st.lastActuationStep, 16u); // the actuator moved on it

    // The re-specified model pulled the loop back in band.
    EXPECT_NE(ctrl.driftState(), DriftState::Drifted);
    EXPECT_LT(ctrl.detector().windowMedian(),
              ctrl.detector().threshold());

    // Ground truth: on the drifted matrix the adapted block size must
    // beat the configuration a frozen model would have kept.
    const std::size_t adapted = plant.currentCandidate();
    ASSERT_NE(adapted, frozen);
    double frozen_mflops = 0.0;
    double adapted_mflops = 0.0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        frozen_mflops += plant.simulateCandidate(frozen, 9000 + seed);
        adapted_mflops += plant.simulateCandidate(adapted, 9000 + seed);
    }
    EXPECT_GT(adapted_mflops, frozen_mflops)
        << "adapted " << plant.describeCandidate(adapted)
        << " vs frozen " << plant.describeCandidate(frozen);

    // Satellite contract: the publish counters now carry the online
    // generation (the registry's v1 is the bootstrap publish).
    const serve::UpdaterStats ust = ctrl.updater().stats();
    EXPECT_GE(ust.published, 1u);
    EXPECT_GE(ust.lastPublishedVersion, 2u);
    EXPECT_GT(ust.lastPublishUnixSeconds, 0.0);
    EXPECT_GE(ctrl.modelAgeSeconds(), 0.0);

    // Per-stage instrumentation saw every observation.
    EXPECT_EQ(ctrl.stageSummary(Stage::Poll).count, 56u);
    EXPECT_EQ(ctrl.stageSummary(Stage::Detect).count, 56u);
    EXPECT_GT(ctrl.stageSummary(Stage::Sync).count, 0u);
    EXPECT_NE(ctrl.report().find("drift state:"), std::string::npos);
}

TEST_F(TuneLoop, KilledTunerResumesIdenticalToUninterruptedRun)
{
    const std::size_t kTotal = 36;
    const std::size_t kCrashAt = 29; // past the first snapshot, off
                                     // any cadence boundary

    // Reference: one uninterrupted run.
    LoopState want;
    {
        const std::string dir = freshDir("tune_uninterrupted");
        SpmvPlant plant(plantOptions(16));
        Controller ctrl(plant, plant, loopOptions(dir));
        ctrl.start(plant.bootstrapDataset());
        ASSERT_EQ(ctrl.run(kTotal), kTotal);
        ctrl.stop();
        want = captureState(ctrl, plant);
        ASSERT_GE(want.stats.respecs, 1u); // a snapshot was written
    }

    // Crashed run: abandon the controller mid-flight without stop()
    // (kill -9 equivalence: no final sync, no final snapshot).
    const std::string dir = freshDir("tune_crash");
    {
        SpmvPlant plant(plantOptions(16));
        auto ctrl = std::make_unique<Controller>(plant, plant,
                                                 loopOptions(dir));
        ctrl->start(plant.bootstrapDataset());
        ASSERT_EQ(ctrl->run(kCrashAt), kCrashAt);
        ASSERT_GE(ctrl->stats().snapshots, 1u);
    }

    // Restart against the same journal directory with a fresh plant:
    // snapshot restore + journal-tail replay + plant fast-forward.
    SpmvPlant plant(plantOptions(16));
    Controller ctrl(plant, plant, loopOptions(dir));
    ctrl.start(plant.bootstrapDataset());
    ASSERT_TRUE(ctrl.resumed());
    EXPECT_EQ(ctrl.stepIndex(), kCrashAt);
    EXPECT_GT(ctrl.stats().replayed, 0u); // the tail past the snapshot
    EXPECT_LT(ctrl.stats().replayed, kCrashAt);

    ASSERT_EQ(ctrl.run(kTotal - kCrashAt), kTotal - kCrashAt);
    ctrl.stop();
    expectSameState(captureState(ctrl, plant), want);
}

TEST_F(TuneLoop, CleanStopAtCadenceBoundaryResumesExactly)
{
    const std::size_t kTotal = 36;
    const std::size_t kStopAt = 24; // cadence boundary

    LoopState want;
    {
        const std::string dir = freshDir("tune_ref2");
        SpmvPlant plant(plantOptions(16));
        Controller ctrl(plant, plant, loopOptions(dir));
        ctrl.start(plant.bootstrapDataset());
        ASSERT_EQ(ctrl.run(kTotal), kTotal);
        ctrl.stop();
        want = captureState(ctrl, plant);
    }

    const std::string dir = freshDir("tune_stop");
    {
        SpmvPlant plant(plantOptions(16));
        Controller ctrl(plant, plant, loopOptions(dir));
        ctrl.start(plant.bootstrapDataset());
        ASSERT_EQ(ctrl.run(kStopAt), kStopAt);
        ctrl.stop(); // exact: snapshot covers the whole journal
    }

    SpmvPlant plant(plantOptions(16));
    Controller ctrl(plant, plant, loopOptions(dir));
    ctrl.start(plant.bootstrapDataset());
    ASSERT_TRUE(ctrl.resumed());
    EXPECT_EQ(ctrl.stepIndex(), kStopAt);
    EXPECT_EQ(ctrl.stats().replayed, 0u); // nothing beyond the snapshot
    ASSERT_EQ(ctrl.run(kTotal - kStopAt), kTotal - kStopAt);
    ctrl.stop();
    expectSameState(captureState(ctrl, plant), want);
}

TEST_F(TuneLoop, PollFaultSkipsObservationWithoutConsumingState)
{
    // Reference: 12 clean observations.
    SpmvPlant cleanPlant(plantOptions(64));
    Controller clean(cleanPlant, cleanPlant, loopOptions(""));
    clean.start(cleanPlant.bootstrapDataset());
    ASSERT_EQ(clean.run(12), 12u);

    // Faulted: every third poll attempt fails; 18 attempts therefore
    // yield the same 12 observations.
    auto &reg = fault::FaultRegistry::instance();
    reg.setEnabled(true);
    fault::PointConfig cfg;
    cfg.everyNth = 3;
    reg.arm("tune.poll.fail", cfg);

    SpmvPlant plant(plantOptions(64));
    Controller ctrl(plant, plant, loopOptions(""));
    ctrl.start(plant.bootstrapDataset());
    ASSERT_EQ(ctrl.run(18), 12u);
    reg.reset();
    reg.setEnabled(false);

    EXPECT_EQ(ctrl.stats().pollFailures, 6u);
    EXPECT_EQ(ctrl.stepIndex(), 12u);
    EXPECT_EQ(ctrl.detector().saveStateToString(),
              clean.detector().saveStateToString());
    EXPECT_EQ(plant.currentCandidate(), cleanPlant.currentCandidate());
    clean.stop();
    ctrl.stop();
}

TEST_F(TuneLoop, ActuateFaultKeepsMovePendingUntilRetry)
{
    auto &reg = fault::FaultRegistry::instance();
    reg.setEnabled(true);
    fault::PointConfig cfg;
    cfg.oneShot = true;
    reg.arm("tune.actuate.fail", cfg);

    SpmvPlant plant(plantOptions(64));
    Controller ctrl(plant, plant, loopOptions(""));
    ctrl.start(plant.bootstrapDataset());
    // First sync (step 4) plans the initial placement and trips the
    // fault; the move stays pending and lands at the next sync.
    ASSERT_EQ(ctrl.run(12), 12u);
    ctrl.stop();
    reg.reset();
    reg.setEnabled(false);

    EXPECT_EQ(ctrl.stats().actuateFailures, 1u);
    EXPECT_EQ(ctrl.stats().actuations, 1u);
    EXPECT_EQ(ctrl.stats().lastActuationStep, 8u);
    EXPECT_NE(plant.currentCandidate(), 0u);
}

TEST_F(TuneLoop, ClockSkewShiftsTimestampsButNotDecisions)
{
    // Unskewed reference with at least one online publish.
    SpmvPlant refPlant(plantOptions(16));
    Controller ref(refPlant, refPlant, loopOptions(""));
    ref.start(refPlant.bootstrapDataset());
    ASSERT_EQ(ref.run(40), 40u);
    ref.stop();
    ASSERT_GE(ref.stats().respecs, 1u);

    auto &reg = fault::FaultRegistry::instance();
    reg.setEnabled(true);
    fault::PointConfig cfg;
    cfg.skewSeconds = 5e5;
    reg.arm("clock.skew", cfg);

    SpmvPlant plant(plantOptions(16));
    Controller ctrl(plant, plant, loopOptions(""));
    ctrl.start(plant.bootstrapDataset());
    ASSERT_EQ(ctrl.run(40), 40u);
    ctrl.stop();

    // The publish stamp routed through the skewed clock...
    const double ref_stamp = ref.updater().stats().lastPublishUnixSeconds;
    const double skew_stamp =
        ctrl.updater().stats().lastPublishUnixSeconds;
    EXPECT_GT(skew_stamp, ref_stamp + 1e5);
    // ...and the skew cancels out of the (equally skewed) age read,
    // so even reporting stays sane.
    EXPECT_LT(std::abs(ctrl.modelAgeSeconds()), 1e5);
    reg.reset();
    reg.setEnabled(false);

    // No decision consumed the clock: the loop ran identically.
    EXPECT_EQ(ctrl.detector().saveStateToString(),
              ref.detector().saveStateToString());
    EXPECT_EQ(plant.currentCandidate(), refPlant.currentCandidate());
    EXPECT_EQ(ctrl.stats().drifts, ref.stats().drifts);
    EXPECT_EQ(ctrl.stats().respecs, ref.stats().respecs);
    EXPECT_EQ(ctrl.stats().actuations, ref.stats().actuations);
}

} // namespace
} // namespace hwsw::tune
