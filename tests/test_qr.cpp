// Unit tests for the column-pivoted QR least-squares solver.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "stats/qr.hpp"

namespace hwsw::stats {
namespace {

TEST(Lstsq, ExactSquareSystem)
{
    Matrix X = {{1, 0}, {0, 2}};
    std::vector<double> z = {3, 8};
    const LstsqResult r = lstsq(X, z, 1e-10, 0.0);
    EXPECT_EQ(r.rank, 2u);
    EXPECT_TRUE(r.dropped.empty());
    EXPECT_NEAR(r.coeffs[0], 3.0, 1e-12);
    EXPECT_NEAR(r.coeffs[1], 4.0, 1e-12);
    EXPECT_NEAR(r.residualNorm, 0.0, 1e-12);
}

TEST(Lstsq, OverdeterminedRecoversTruth)
{
    // z = 2 + 3 a - 1.5 b, no noise: exact recovery expected.
    Rng rng(3);
    const std::size_t n = 50;
    Matrix X(n, 3);
    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.nextUniform(-2, 2);
        const double b = rng.nextUniform(-2, 2);
        X(i, 0) = 1.0;
        X(i, 1) = a;
        X(i, 2) = b;
        z[i] = 2.0 + 3.0 * a - 1.5 * b;
    }
    const LstsqResult exact = lstsq(X, z, 1e-10, 0.0);
    EXPECT_EQ(exact.rank, 3u);
    EXPECT_NEAR(exact.coeffs[0], 2.0, 1e-10);
    EXPECT_NEAR(exact.coeffs[1], 3.0, 1e-10);
    EXPECT_NEAR(exact.coeffs[2], -1.5, 1e-10);
    // The default ridge perturbs coefficients only negligibly.
    const LstsqResult ridged = lstsq(X, z);
    EXPECT_NEAR(ridged.coeffs[1], 3.0, 1e-3);
}

TEST(Lstsq, NoisyFitMinimizesResidual)
{
    Rng rng(7);
    const std::size_t n = 200;
    Matrix X(n, 2);
    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.nextUniform(0, 1);
        X(i, 0) = 1.0;
        X(i, 1) = a;
        z[i] = 1.0 + 2.0 * a + 0.01 * rng.nextGaussian();
    }
    const LstsqResult r = lstsq(X, z);
    EXPECT_NEAR(r.coeffs[0], 1.0, 0.01);
    EXPECT_NEAR(r.coeffs[1], 2.0, 0.02);
}

TEST(Lstsq, DetectsExactCollinearity)
{
    // Column 2 = 2 * column 1: the solver must drop one column, not
    // blow up (Section 3.1: temporal/spatial locality collinearity).
    Rng rng(11);
    const std::size_t n = 40;
    Matrix X(n, 3);
    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.nextUniform(-1, 1);
        X(i, 0) = 1.0;
        X(i, 1) = a;
        X(i, 2) = 2.0 * a;
        z[i] = 5.0 + a;
    }
    const LstsqResult r = lstsq(X, z, 1e-10, 0.0);
    EXPECT_EQ(r.rank, 2u);
    ASSERT_EQ(r.dropped.size(), 1u);
    // Predictions must still be exact despite the drop.
    for (std::size_t i = 0; i < n; ++i) {
        double pred = 0;
        for (std::size_t c = 0; c < 3; ++c)
            pred += X(i, c) * r.coeffs[c];
        EXPECT_NEAR(pred, z[i], 1e-8);
    }
    // The dropped column has a zero coefficient.
    EXPECT_DOUBLE_EQ(r.coeffs[r.dropped[0]], 0.0);
}

TEST(Lstsq, DropsDuplicateAndConstantColumns)
{
    Rng rng(13);
    const std::size_t n = 30;
    Matrix X(n, 4);
    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.nextUniform(-1, 1);
        X(i, 0) = 1.0;
        X(i, 1) = a;
        X(i, 2) = a;   // duplicate
        X(i, 3) = 0.0; // all-zero
        z[i] = a;
    }
    const LstsqResult r = lstsq(X, z, 1e-10, 0.0);
    EXPECT_EQ(r.rank, 2u);
    EXPECT_EQ(r.dropped.size(), 2u);
}

TEST(Lstsq, ResidualNormMatchesManual)
{
    // Inconsistent system: X = [[1],[1]], z = [0, 2]; best fit b = 1,
    // residual = sqrt(2).
    Matrix X = {{1}, {1}};
    std::vector<double> z = {0, 2};
    const LstsqResult r = lstsq(X, z, 1e-10, 0.0);
    EXPECT_NEAR(r.coeffs[0], 1.0, 1e-12);
    EXPECT_NEAR(r.residualNorm, std::sqrt(2.0), 1e-12);
}

TEST(Lstsq, RejectsEmpty)
{
    Matrix X;
    std::vector<double> z;
    EXPECT_THROW(lstsq(X, z), FatalError);
}

TEST(WeightedLstsq, WeightsPullTheFit)
{
    // Two inconsistent points; weights decide the answer.
    Matrix X = {{1}, {1}};
    std::vector<double> z = {0, 10};
    std::vector<double> w_hi = {1, 99};
    const LstsqResult r = weightedLstsq(X, z, w_hi);
    EXPECT_NEAR(r.coeffs[0], 9.9, 1e-3);

    std::vector<double> w_eq = {1, 1};
    const LstsqResult r2 = weightedLstsq(X, z, w_eq);
    EXPECT_NEAR(r2.coeffs[0], 5.0, 1e-3);
}

TEST(WeightedLstsq, ZeroWeightIgnoresRow)
{
    Matrix X = {{1}, {1}, {1}};
    std::vector<double> z = {2, 2, 100};
    std::vector<double> w = {1, 1, 0};
    const LstsqResult r = weightedLstsq(X, z, w);
    EXPECT_NEAR(r.coeffs[0], 2.0, 1e-3);
}

TEST(WeightedLstsq, RejectsNegativeWeights)
{
    Matrix X = {{1}};
    std::vector<double> z = {1};
    std::vector<double> w = {-1};
    EXPECT_THROW(weightedLstsq(X, z, w), FatalError);
}

TEST(Lstsq, WideMatrixUnderdetermined)
{
    // More columns than rows: rank <= rows, extra columns dropped.
    Matrix X = {{1, 2, 3}, {4, 5, 6}};
    std::vector<double> z = {1, 2};
    const LstsqResult r = lstsq(X, z, 1e-10, 0.0);
    EXPECT_LE(r.rank, 2u);
    double pred0 = 0, pred1 = 0;
    for (std::size_t c = 0; c < 3; ++c) {
        pred0 += X(0, c) * r.coeffs[c];
        pred1 += X(1, c) * r.coeffs[c];
    }
    EXPECT_NEAR(pred0, 1.0, 1e-8);
    EXPECT_NEAR(pred1, 2.0, 1e-8);
}

} // namespace
} // namespace hwsw::stats
