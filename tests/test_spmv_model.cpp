// Tests for the domain-specific SpMV models (Section 5.3).
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "spmv/matgen.hpp"
#include "spmv/tuner.hpp"

namespace hwsw::spmv {
namespace {

const CoordinatedTuner &
sharedTuner()
{
    static const CsrMatrix csr =
        generateMatrix(matrixInfo("crystk02"), 0.2, 3);
    static TunerOptions opts = [] {
        TunerOptions o;
        o.trainingSamples = 120;
        o.validationSamples = 40;
        o.sim.maxAccesses = 80 * 1000;
        return o;
    }();
    static const CoordinatedTuner tuner(csr, opts);
    return tuner;
}

TEST(SpmvSample, MakePacksFields)
{
    const CsrMatrix csr = generateMatrix(matrixInfo("memplus"), 0.05, 1);
    const BcsrStructure s = BcsrStructure::fromCsr(csr, 2, 3);
    SpmvCacheConfig cfg;
    SpmvResult res;
    res.mflops = 55.0;
    res.powerW = 0.4;
    res.nJPerFlop = 12.0;
    const SpmvSample sample = SpmvSample::make(s, cfg, res);
    EXPECT_DOUBLE_EQ(sample.brow, 2.0);
    EXPECT_DOUBLE_EQ(sample.bcol, 3.0);
    EXPECT_NEAR(sample.fill, s.fillRatio(), 1e-12);
    EXPECT_DOUBLE_EQ(sample.mflops, 55.0);
    EXPECT_DOUBLE_EQ(sample.powerW, 0.4);
}

TEST(SpmvModel, RequiresEnoughSamples)
{
    std::vector<SpmvSample> few(10);
    SpmvModel m;
    EXPECT_THROW(m.fit(few), FatalError);
    EXPECT_FALSE(m.fitted());
}

TEST(SpmvModel, PredictBeforeFitPanics)
{
    SpmvModel m;
    EXPECT_THROW(m.predict(SpmvSample{}), PanicError);
}

TEST(SpmvModel, PerformanceAccuracyInPaperBand)
{
    // The paper reports 4-6% median error; allow headroom for the
    // small training budget used in tests.
    const auto val = sharedTuner().sampleSpace(60, 999);
    const auto metrics = sharedTuner().perfModel().validate(val);
    EXPECT_LT(metrics.medianAbsPctError, 0.12);
    EXPECT_GT(metrics.spearman, 0.85);
}

TEST(SpmvModel, PowerModelFitsToo)
{
    const auto train = sharedTuner().sampleSpace(150, 7);
    const auto val = sharedTuner().sampleSpace(50, 8);
    SpmvModel power(SpmvTarget::Power);
    power.fit(train);
    const auto metrics = power.validate(val);
    EXPECT_LT(metrics.medianAbsPctError, 0.15);
    EXPECT_GT(metrics.spearman, 0.8);
}

TEST(SpmvModel, EnergyModelFitsToo)
{
    const auto train = sharedTuner().sampleSpace(150, 9);
    const auto val = sharedTuner().sampleSpace(50, 10);
    SpmvModel energy(SpmvTarget::Energy);
    energy.fit(train);
    const auto metrics = energy.validate(val);
    EXPECT_LT(metrics.medianAbsPctError, 0.2);
}

TEST(SpmvModel, PredictionsArePositive)
{
    const auto val = sharedTuner().sampleSpace(40, 11);
    for (const auto &s : val)
        EXPECT_GT(sharedTuner().perfModel().predict(s), 0.0);
}

TEST(SpmvModel, FillRatioDrivesPrediction)
{
    // Same block size and cache, higher fill => lower predicted
    // performance (fill is the key semantic parameter).
    const SpmvModel &m = sharedTuner().perfModel();
    SpmvSample lo, hi;
    lo.brow = hi.brow = 4;
    lo.bcol = hi.bcol = 4;
    lo.cache = SpmvCacheConfig{}.features();
    hi.cache = lo.cache;
    lo.fill = 1.0;
    hi.fill = 2.0;
    EXPECT_GT(m.predict(lo), m.predict(hi));
}

} // namespace
} // namespace hwsw::spmv
