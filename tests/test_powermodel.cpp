// Property tests for the activity-based power model, parameterized
// across the application suite.
#include <gtest/gtest.h>

#include <map>

#include "uarch/powermodel.hpp"
#include "workload/apps.hpp"
#include "workload/generator.hpp"

namespace hwsw::uarch {
namespace {

const ShardSignature &
sigFor(const std::string &name)
{
    static std::map<std::string, ShardSignature> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        const auto shards = wl::makeShards(wl::makeApp(name), 16384, 2);
        it = cache.emplace(name, computeSignatures(shards)[1]).first;
    }
    return it->second;
}

class PowerModelTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const ShardSignature &sig() const { return sigFor(GetParam()); }
};

TEST_P(PowerModelTest, PlausibleWattage)
{
    Rng rng(3);
    for (int i = 0; i < 30; ++i) {
        const UarchConfig cfg = UarchConfig::randomSample(rng);
        const PowerEstimate p = estimatePower(sig(), cfg);
        EXPECT_GT(p.dynamicW, 0.01);
        EXPECT_LT(p.dynamicW, 50.0);
        EXPECT_GT(p.staticW, 0.1);
        EXPECT_LT(p.staticW, 5.0);
    }
}

TEST_P(PowerModelTest, BiggerMachineBurnsMorePower)
{
    UarchConfig small, big;
    small.width = 1;
    small.lsq = 11;
    small.iq = 22;
    small.rob = 64;
    small.physRegs = 86;
    small.dcacheKB = 16;
    small.icacheKB = 16;
    small.l2KB = 256;
    small.intAlu = 1;
    small.fpAlu = 1;
    big.width = 8;
    big.lsq = 36;
    big.iq = 72;
    big.rob = 224;
    big.physRegs = 296;
    big.dcacheKB = 128;
    big.icacheKB = 128;
    big.l2KB = 4096;
    big.intAlu = 4;
    big.fpAlu = 3;
    const PowerEstimate ps = estimatePower(sig(), small);
    const PowerEstimate pb = estimatePower(sig(), big);
    EXPECT_GT(pb.total(), ps.total());
    EXPECT_GT(pb.staticW, ps.staticW);
}

TEST_P(PowerModelTest, EnergyPerInstructionPositiveAndBounded)
{
    Rng rng(7);
    for (int i = 0; i < 20; ++i) {
        const UarchConfig cfg = UarchConfig::randomSample(rng);
        const double e = energyPerInstrNJ(sig(), cfg);
        EXPECT_GT(e, 0.05);
        EXPECT_LT(e, 100.0);
    }
}

TEST_P(PowerModelTest, HigherIpcMeansMoreDynamicPower)
{
    // Same machine, throttled by a tiny window vs a big one: more
    // throughput burns proportionally more dynamic power.
    UarchConfig slow, fast;
    slow.lsq = 11;
    slow.iq = 22;
    slow.rob = 64;
    slow.physRegs = 86;
    fast.lsq = 36;
    fast.iq = 72;
    fast.rob = 224;
    fast.physRegs = 296;
    const double ipc_slow = 1.0 / shardCpi(sig(), slow);
    const double ipc_fast = 1.0 / shardCpi(sig(), fast);
    if (ipc_fast > ipc_slow * 1.05) {
        EXPECT_GT(estimatePower(sig(), fast).dynamicW,
                  estimatePower(sig(), slow).dynamicW);
    }
}

INSTANTIATE_TEST_SUITE_P(AllApps, PowerModelTest,
                         ::testing::ValuesIn(wl::suiteAppNames()),
                         [](const auto &info) { return info.param; });

TEST(PowerModel, FpOpsCostMoreThanIntOps)
{
    // Controlled streams isolate the functional-unit energy term:
    // a pure FP-multiply stream must burn more dynamic energy per
    // instruction than a pure integer-ALU stream on the same machine.
    std::vector<wl::MicroOp> fp_ops(4096), int_ops(4096);
    for (auto &op : fp_ops)
        op.cls = wl::OpClass::FpMulDiv;
    for (auto &op : int_ops)
        op.cls = wl::OpClass::IntAlu;
    const ShardSignature fp_sig = computeSignature(fp_ops);
    const ShardSignature int_sig = computeSignature(int_ops);
    UarchConfig cfg;
    const double fp_ipc = 1.0 / shardCpi(fp_sig, cfg);
    const double int_ipc = 1.0 / shardCpi(int_sig, cfg);
    const double fp_dyn_per_instr =
        estimatePower(fp_sig, cfg).dynamicW / fp_ipc;
    const double int_dyn_per_instr =
        estimatePower(int_sig, cfg).dynamicW / int_ipc;
    EXPECT_GT(fp_dyn_per_instr, int_dyn_per_instr);
}

} // namespace
} // namespace hwsw::uarch
