// Unit tests for the deterministic random number generator.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace hwsw {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (a() == b());
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextIntWithinBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextInt(bound), bound);
    }
}

TEST(Rng, NextIntCoversAllValues)
{
    Rng rng(7);
    std::vector<int> seen(5, 0);
    for (int i = 0; i < 2000; ++i)
        ++seen[rng.nextInt(5)];
    for (int count : seen)
        EXPECT_GT(count, 250); // each of 5 values ~400 expected
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    const int n = 20000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextGaussian();
        sum += v;
        sum2 += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(17);
    const int n = 20000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(19);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += rng.nextBool(0.3);
    EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(23);
    std::vector<double> w = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.nextDiscrete(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, DiscreteRejectsAllZero)
{
    Rng rng(29);
    std::vector<double> w = {0.0, 0.0};
    EXPECT_THROW(rng.nextDiscrete(w), PanicError);
}

TEST(Rng, PositiveHasRequestedMean)
{
    Rng rng(31);
    const int n = 30000;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
        const auto v = rng.nextPositive(6.0);
        ASSERT_GE(v, 1u);
        sum += static_cast<double>(v);
    }
    EXPECT_NEAR(sum / n, 6.0, 0.4);
}

TEST(Rng, PositiveDegenerateMeanIsOne)
{
    Rng rng(37);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextPositive(0.5), 1u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(99);
    Rng b = a.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += (a() == b());
    EXPECT_LT(equal, 3);
}

} // namespace
} // namespace hwsw
