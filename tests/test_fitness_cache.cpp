// Tests for cross-generation fitness memoization and the canonical
// ModelSpec key it hashes with.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/fitness_cache.hpp"
#include "core/genetic.hpp"

namespace hwsw::core {
namespace {

Dataset
cacheData(std::size_t per_app, std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"alpha", "beta"}) {
        const double base = app[0] == 'a' ? 1.0 : 2.0;
        for (std::size_t i = 0; i < per_app; ++i) {
            ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[7] = rng.nextUniform(10, 1000);
            r.vars[kNumSw] = 1 << rng.nextInt(4);
            r.vars[kNumSw + 4] = 16 << rng.nextInt(4);
            r.perf = base + 2.0 * r.vars[6] + 3.0 / r.vars[kNumSw] +
                0.3 * std::sqrt(r.vars[7]) * 16.0 /
                    r.vars[kNumSw + 4];
            ds.add(r);
        }
    }
    return ds;
}

GaOptions
cacheOpts()
{
    GaOptions o;
    o.populationSize = 12;
    o.generations = 5;
    o.numThreads = 1;
    o.seed = 7;
    return o;
}

TEST(FitnessCache, LookupReturnsInsertedValue)
{
    FitnessCache cache;
    Rng rng(1);
    const ModelSpec spec = ModelSpec::random(rng);
    EXPECT_FALSE(cache.lookup(spec).has_value());

    cache.insert(spec, {0.25, 1.5});
    const auto hit = cache.lookup(spec);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->fitness, 0.25);
    EXPECT_DOUBLE_EQ(hit->sumMedianError, 1.5);
    EXPECT_EQ(cache.size(), 1u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup(spec).has_value());
}

TEST(FitnessCache, CachedFitnessEqualsFreshEvaluate)
{
    // Bit-identical memoization: for random specs, the value the
    // search memoizes must equal a fresh evaluate() on the same
    // folds.
    const Dataset data = cacheData(40, 2);
    GeneticSearch search(data, cacheOpts());
    FitnessCache cache;
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        ModelSpec spec = ModelSpec::random(rng, 0.4, 6);
        const auto [fitness, sum_err] = search.evaluate(spec);
        cache.insert(spec, {fitness, sum_err});
        const auto memo = cache.lookup(spec);
        ASSERT_TRUE(memo.has_value());
        const auto [again_fit, again_err] = search.evaluate(spec);
        EXPECT_EQ(memo->fitness, again_fit);
        EXPECT_EQ(memo->sumMedianError, again_err);
    }
}

TEST(FitnessCache, ElitesHitTheCacheAcrossGenerations)
{
    // Elitism re-submits the best N% unchanged each generation; with
    // memoization on, those re-evaluations must be hits, visible in
    // the metrics counters by generation 2.
    GeneticSearch search(cacheData(40, 4), cacheOpts());
    const GaResult result = search.run();
    ASSERT_GE(result.history.size(), 3u);

    // Generation 0 is all misses (cold cache).
    EXPECT_EQ(result.history[0].cacheHits, 0u);
    EXPECT_EQ(result.history[0].cacheMisses, 12u);

    // Elite carry-over guarantees hits from generation 1 on. The
    // elite fraction is 0.25 of 12 -> at least 3 per generation.
    for (std::size_t g = 1; g < result.history.size(); ++g)
        EXPECT_GE(result.history[g].cacheHits, 3u) << "gen " << g;

    EXPECT_GT(result.metrics.cacheHits, 0u);
    EXPECT_EQ(result.metrics.cacheHits + result.metrics.cacheMisses,
              result.metrics.evaluations);
    EXPECT_EQ(result.metrics.modelFits,
              result.metrics.cacheMisses * search.numFolds());
    EXPECT_GT(search.cacheSize(), 0u);
}

TEST(FitnessCache, DisabledMemoizationNeverHits)
{
    GaOptions opts = cacheOpts();
    opts.memoizeFitness = false;
    GeneticSearch search(cacheData(40, 4), opts);
    const GaResult result = search.run();
    EXPECT_EQ(result.metrics.cacheHits, 0u);
    EXPECT_EQ(result.metrics.cacheMisses, result.metrics.evaluations);
    EXPECT_EQ(search.cacheSize(), 0u);
}

TEST(FitnessCache, CanonicalKeyMatchesEqualityOnRandomSpecs)
{
    // Property test: equal specs hash equal; distinct specs land in
    // distinct map entries even if their 64-bit keys were to collide,
    // because the cache compares full specs.
    Rng rng(5);
    std::vector<ModelSpec> specs;
    for (int i = 0; i < 400; ++i)
        specs.push_back(ModelSpec::random(rng, 0.35, 8));

    std::unordered_map<ModelSpec, std::size_t, ModelSpecHash> index;
    for (std::size_t i = 0; i < specs.size(); ++i)
        index.emplace(specs[i], i); // keeps first occurrence

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto it = index.find(specs[i]);
        ASSERT_NE(it, index.end());
        // The entry found must be a spec equal to ours, never an
        // aliased distinct spec.
        EXPECT_EQ(it->first, specs[i]);
        ModelSpec copy = specs[i];
        EXPECT_EQ(copy.canonicalKey(), specs[i].canonicalKey());
    }
}

TEST(FitnessCache, CanonicalKeyIsNormalizationInvariant)
{
    ModelSpec spec;
    spec.genes[1] = 2;
    spec.genes[4] = 1;
    spec.interactions = {{4, 1}, {1, 4}, {2, 2}, {1, 4}};

    ModelSpec normalized = spec;
    normalized.normalize();
    EXPECT_NE(spec.interactions, normalized.interactions);
    EXPECT_EQ(spec.canonicalKey(), normalized.canonicalKey());
}

TEST(FitnessCache, CanonicalKeySeparatesNearbySpecs)
{
    // Single-gene and single-interaction perturbations must change
    // the key (these are exactly the mutations the search applies).
    ModelSpec base;
    base.genes[0] = 1;
    base.genes[3] = 4;
    base.interactions = {{0, 3}};
    const std::uint64_t k0 = base.canonicalKey();

    std::unordered_set<std::uint64_t> keys{k0};
    for (std::uint8_t g = 0; g <= kMaxGene; ++g) {
        if (g == base.genes[3])
            continue;
        ModelSpec m = base;
        m.genes[3] = g;
        EXPECT_TRUE(keys.insert(m.canonicalKey()).second);
    }
    ModelSpec extra = base;
    extra.interactions.push_back({1, 2});
    extra.normalize();
    EXPECT_TRUE(keys.insert(extra.canonicalKey()).second);

    ModelSpec none = base;
    none.interactions.clear();
    EXPECT_TRUE(keys.insert(none.canonicalKey()).second);
}

TEST(FitnessCache, ConcurrentMixedReadersAndWriters)
{
    FitnessCache cache(8);
    Rng seed_rng(6);
    std::vector<ModelSpec> shared;
    for (int i = 0; i < 64; ++i)
        shared.push_back(ModelSpec::random(seed_rng, 0.4, 6));

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < 200; ++round) {
                const ModelSpec &s =
                    shared[static_cast<std::size_t>((t * 977 + round * 31)) %
                           shared.size()];
                const double fit =
                    static_cast<double>(s.canonicalKey() % 1000) / 1000.0;
                if ((round + t) % 3 == 0) {
                    cache.insert(s, {fit, 2.0 * fit});
                } else if (const auto v = cache.lookup(s)) {
                    // Values are keyed to the spec, so whichever
                    // writer won, the content must be consistent.
                    EXPECT_DOUBLE_EQ(v->fitness, fit);
                    EXPECT_DOUBLE_EQ(v->sumMedianError, 2.0 * fit);
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_LE(cache.size(), shared.size());
    EXPECT_GT(cache.size(), 0u);
}

} // namespace
} // namespace hwsw::core
