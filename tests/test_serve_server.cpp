// Loopback integration tests for the serving TCP server: protocol
// round trips, hot swap under load, online updates, and graceful
// shutdown. The concurrency tests here are part of the tier15_serve
// aggregate and are expected to run under -DHWSW_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "core/serialize.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

#include "serve_test_util.hpp"

namespace hwsw::serve {
namespace {

ServerOptions
testOpts()
{
    ServerOptions o;
    o.engine.threads = 2;
    return o;
}

struct Loopback
{
    std::shared_ptr<ModelRegistry> registry;
    std::unique_ptr<Server> server;

    explicit Loopback(ServerOptions opts = testOpts(),
                      OnlineUpdater *updater = nullptr)
        : registry(std::make_shared<ModelRegistry>())
    {
        registry->publish("default", testutil::makeModel(), "boot");
        server = std::make_unique<Server>(registry, opts, updater);
        server->start();
    }

    Client connect() const { return Client("127.0.0.1", server->port()); }
};

TEST(ServeServer, StartStopIsCleanAndIdempotent)
{
    Loopback loop;
    EXPECT_TRUE(loop.server->running());
    EXPECT_NE(loop.server->port(), 0);
    loop.server->stop();
    EXPECT_FALSE(loop.server->running());
    loop.server->stop(); // idempotent
}

TEST(ServeServer, PingAndUnknownVerb)
{
    Loopback loop;
    Client c = loop.connect();
    EXPECT_TRUE(c.ping());

    // An unknown verb answers an error but keeps the session open.
    const auto out = c.predict("default", FeatureVector{});
    EXPECT_TRUE(out.ok); // all-zero row is still a valid request
    EXPECT_TRUE(c.ping());
    c.quit();
}

TEST(ServeServer, PredictMatchesLocalModelExactly)
{
    Loopback loop;
    Client c = loop.connect();
    const SnapshotPtr snap = loop.registry->lookup("default");
    Rng rng(1);
    for (int i = 0; i < 8; ++i) {
        const FeatureVector row = testutil::makeRow(rng);
        const ClientPrediction out = c.predict("default", row);
        ASSERT_TRUE(out.ok) << out.error;
        EXPECT_EQ(out.modelVersion, snap->version);
        ASSERT_EQ(out.values.size(), 1u);
        // %.17g framing: the value survives the wire bit-exactly.
        EXPECT_EQ(out.values[0],
                  snap->model.predict(testutil::rowRecord(row)));
    }
    c.quit();
}

TEST(ServeServer, BatchPredictRoundTrip)
{
    Loopback loop;
    Client c = loop.connect();
    Rng rng(2);
    std::vector<FeatureVector> rows;
    for (int i = 0; i < 40; ++i)
        rows.push_back(testutil::makeRow(rng));
    const ClientPrediction out = c.predictBatch("default", rows);
    ASSERT_TRUE(out.ok) << out.error;
    ASSERT_EQ(out.values.size(), rows.size());
    const SnapshotPtr snap = loop.registry->lookup("default");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(out.values[i],
                  snap->model.predict(testutil::rowRecord(rows[i])));
    }
    c.quit();
}

TEST(ServeServer, ErrorsArePerRequestNotPerConnection)
{
    Loopback loop;
    Client c = loop.connect();
    Rng rng(3);
    const FeatureVector row = testutil::makeRow(rng);

    const ClientPrediction bad = c.predict("ghost", row);
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.error.empty());

    // The same session still serves good requests afterwards.
    EXPECT_TRUE(c.predict("default", row).ok);
    c.quit();
}

TEST(ServeServer, LoadPublishesAndSwapRollsBack)
{
    Loopback loop;
    Client c = loop.connect();

    const std::string text =
        core::saveModelToString(testutil::makeModel(9));
    std::string err;
    const auto v2 = c.loadModel("default", text, &err);
    ASSERT_TRUE(v2) << err;
    EXPECT_EQ(*v2, 2u);
    EXPECT_EQ(loop.registry->lookup("default")->version, 2u);

    // Uploading garbage is refused cleanly and changes nothing.
    EXPECT_FALSE(c.loadModel("default", "not a model", &err));
    EXPECT_NE(err.find("error"), std::string::npos);
    EXPECT_EQ(loop.registry->lookup("default")->version, 2u);

    // Roll back to v1, then a fresh name gets its own version line.
    ASSERT_TRUE(c.swapModel("default", 1, &err)) << err;
    EXPECT_EQ(loop.registry->lookup("default")->version, 1u);
    EXPECT_FALSE(c.swapModel("default", 99));

    const auto other = c.loadModel("other", text, &err);
    ASSERT_TRUE(other) << err;
    EXPECT_EQ(*other, 1u);
    c.quit();
}

TEST(ServeServer, StatsVerbReportsTraffic)
{
    Loopback loop;
    Client c = loop.connect();
    Rng rng(4);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(c.predict("default", testutil::makeRow(rng)).ok);

    const std::string report = c.stats();
    EXPECT_NE(report.find("== serve stats =="), std::string::npos);
    EXPECT_NE(report.find("predict"), std::string::npos);
    EXPECT_NE(report.find("default v1"), std::string::npos);
    EXPECT_NE(report.find("p99"), std::string::npos);
    c.quit();

    EXPECT_GE(loop.server->latency().summary(Verb::Predict).requests,
              5u);
}

TEST(ServeServer, MalformedRequestsAnswerErrors)
{
    Loopback loop;
    Client c = loop.connect();
    // Drive the wire directly via a second raw client: predict with
    // too few features, batch with a bogus count, unknown verb.
    const auto out1 = c.predict("default", FeatureVector{});
    EXPECT_TRUE(out1.ok);
    Rng rng(5);
    std::vector<FeatureVector> none;
    const auto out2 = c.predictBatch("default", none);
    EXPECT_FALSE(out2.ok); // count 0 is refused
    EXPECT_TRUE(c.ping());
    c.quit();
}

TEST(ServeServer, HotSwapUnderLoadLosesNoRequest)
{
    // The tentpole acceptance check: clients hammer predict while the
    // model is republished concurrently; every in-flight request must
    // complete against a coherent snapshot — zero failures, zero
    // sheds (capacity is ample), version always one that existed.
    Loopback loop;
    std::atomic<bool> go{true};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};

    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t) {
        clients.emplace_back([&, t] {
            Client c = loop.connect();
            Rng rng(20 + t);
            std::vector<FeatureVector> rows;
            for (int i = 0; i < 8; ++i)
                rows.push_back(testutil::makeRow(rng));
            while (go.load(std::memory_order_relaxed)) {
                const ClientPrediction out =
                    c.predictBatch("default", rows);
                if (out.ok && out.values.size() == rows.size() &&
                    out.modelVersion >= 1) {
                    completed.fetch_add(1, std::memory_order_relaxed);
                } else {
                    failed.fetch_add(1, std::memory_order_relaxed);
                }
            }
            c.quit();
        });
    }

    // Publisher: republish and occasionally roll back, mid-load.
    const core::HwSwModel model = testutil::makeModel();
    Client admin = loop.connect();
    const std::string text = core::saveModelToString(model);
    // Publish until the clients have demonstrably overlapped with
    // swaps (bounded so a wedged server cannot hang the test).
    for (int i = 0;
         i < 30 || (completed.load(std::memory_order_relaxed) < 20 &&
                    i < 3000);
         ++i) {
        if (i % 3 == 2) {
            const auto active =
                loop.registry->lookup("default")->version;
            if (active > 1)
                admin.swapModel("default", active - 1);
        } else {
            ASSERT_TRUE(admin.loadModel("default", text));
        }
    }
    go.store(false, std::memory_order_relaxed);
    for (auto &t : clients)
        t.join();
    admin.quit();

    EXPECT_GT(completed.load(), 0u);
    EXPECT_EQ(failed.load(), 0u);
    EXPECT_EQ(loop.server->engine().counters().shed, 0u);
}

TEST(ServeServer, StopSeversLiveConnections)
{
    // A client blocked in a read must see the connection die when the
    // server stops, not hang forever; the server must join all of its
    // threads (TSan/valgrind-visible if it does not).
    Loopback loop;
    Client c = loop.connect();
    EXPECT_TRUE(c.ping());

    std::thread stopper([&] { loop.server->stop(); });
    // After stop, round trips fail with FatalError (connection lost)
    // or return garbage-free errors; they must not hang.
    stopper.join();
    EXPECT_THROW(
        {
            for (int i = 0; i < 100; ++i)
                (void)c.ping();
        },
        FatalError);
    EXPECT_FALSE(loop.server->running());
}

TEST(ServeServer, ObserveFeedsOnlineUpdaterAndPublishes)
{
    // End-to-end inductive loop: a bootstrapped manager serves as the
    // background publisher; wildly out-of-band observations from one
    // app accumulate until re-specification fires, and the updated
    // model appears in the registry as a new version while the
    // serving plane keeps answering.
    core::Dataset boot;
    Rng rng(7);
    for (const char *app : {"a1", "a2"}) {
        for (int i = 0; i < 60; ++i) {
            core::ProfileRecord r;
            r.app = app;
            r.vars[1] = (app[1] == '1' ? 0.05 : 0.15) +
                        rng.nextUniform(0.0, 0.1);
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[core::kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 4.0 * r.vars[1] + 2.0 * r.vars[6] +
                     3.0 / r.vars[core::kNumSw];
            boot.add(r);
        }
    }
    core::GaOptions ga;
    ga.populationSize = 10;
    ga.generations = 4;
    ga.numThreads = 1;
    ga.seed = 5;
    core::ManagerOptions mo;
    mo.profilesForUpdate = 6;
    mo.updateGenerations = 4;
    auto manager =
        std::make_unique<core::ModelManager>(boot, ga, mo);
    manager->bootstrapModel();
    const core::HwSwModel bootModel = manager->model();

    auto registry = std::make_shared<ModelRegistry>();
    registry->publish("default", bootModel, "bootstrap");
    OnlineUpdater updater(std::move(manager), registry, "default");
    updater.start();

    Server server(registry, testOpts(), &updater);
    server.start();
    Client c("127.0.0.1", server.port());

    // Wrong model name is refused; the updater never sees it.
    FeatureVector probe{};
    probe[1] = 0.9;
    probe[6] = 0.3;
    probe[core::kNumSw] = 4;
    EXPECT_NE(c.observe("ghost", "novel", probe, 1.0), "queued");

    // Stream novel-app observations until the background publisher
    // pushes an update (bounded by the observation count).
    int queued = 0;
    for (int i = 0; i < 30; ++i) {
        FeatureVector row{};
        row[1] = 0.9 + rng.nextUniform(0.0, 0.1);
        row[6] = rng.nextUniform(0.1, 0.6);
        row[core::kNumSw] = 1 << rng.nextInt(4);
        const double perf = 0.5 + 4.0 * row[1] + 2.0 * row[6] +
                            3.0 / row[core::kNumSw];
        const std::string r = c.observe("default", "novel", row, perf);
        ASSERT_TRUE(r == "queued" || r == "shed") << r;
        if (r == "queued")
            ++queued;
        if (i % 5 == 4)
            updater.drain();
        if (registry->lookup("default")->version > 1)
            break;
    }
    updater.drain();
    EXPECT_GT(queued, 0);

    const UpdaterStats st = updater.stats();
    EXPECT_GT(st.observed, 0u);
    EXPECT_GE(st.updates, 1u) << "re-specification never fired";
    EXPECT_GE(st.published, 1u);
    const SnapshotPtr snap = registry->lookup("default");
    EXPECT_GT(snap->version, 1u);
    EXPECT_EQ(snap->source, "online-update");

    // The serving plane answers with the updated model.
    const ClientPrediction out = c.predict("default", probe);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.modelVersion, snap->version);

    c.quit();
    server.stop();
    updater.stop();
}

TEST(ServeServer, ObserveWithoutUpdaterIsAnError)
{
    Loopback loop; // no updater wired
    Client c = loop.connect();
    FeatureVector row{};
    const std::string r = c.observe("default", "app", row, 1.0);
    EXPECT_NE(r, "queued");
    EXPECT_NE(r, "shed");
    c.quit();
}

} // namespace
} // namespace hwsw::serve
