// Unit tests for LinearModel and prediction metrics.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "common/rng.hpp"
#include "stats/linear_model.hpp"

namespace hwsw::stats {
namespace {

TEST(Metrics, AbsPctErrors)
{
    std::vector<double> pred = {11, 18};
    std::vector<double> truth = {10, 20};
    const auto errs = absPctErrors(pred, truth);
    EXPECT_NEAR(errs[0], 0.1, 1e-12);
    EXPECT_NEAR(errs[1], 0.1, 1e-12);
}

TEST(Metrics, EvaluatePerfectPredictions)
{
    std::vector<double> v = {1, 2, 3, 4};
    const FitMetrics m = evaluatePredictions(v, v);
    EXPECT_DOUBLE_EQ(m.medianAbsPctError, 0.0);
    EXPECT_DOUBLE_EQ(m.maxAbsPctError, 0.0);
    EXPECT_NEAR(m.pearson, 1.0, 1e-12);
    EXPECT_NEAR(m.spearman, 1.0, 1e-12);
    EXPECT_NEAR(m.r2, 1.0, 1e-12);
}

TEST(Metrics, KnownErrorDistribution)
{
    std::vector<double> truth = {10, 10, 10, 10};
    std::vector<double> pred = {10.5, 11, 12, 9};
    const FitMetrics m = evaluatePredictions(pred, truth);
    EXPECT_NEAR(m.medianAbsPctError, 0.1, 1e-9);
    EXPECT_NEAR(m.maxAbsPctError, 0.2, 1e-9);
    EXPECT_NEAR(m.meanAbsPctError, 0.1125, 1e-9);
}

TEST(Metrics, ZeroTruthPanics)
{
    std::vector<double> pred = {1};
    std::vector<double> truth = {0};
    EXPECT_THROW(absPctErrors(pred, truth), PanicError);
}

TEST(LinearModel, FitPredictRoundTrip)
{
    Rng rng(3);
    const std::size_t n = 100;
    Matrix X(n, 3);
    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i) {
        X(i, 0) = 1.0;
        X(i, 1) = rng.nextUniform(-1, 1);
        X(i, 2) = rng.nextUniform(-1, 1);
        z[i] = 0.5 - 2.0 * X(i, 1) + 0.25 * X(i, 2);
    }
    LinearModel m;
    EXPECT_FALSE(m.fitted());
    m.fit(X, z);
    EXPECT_TRUE(m.fitted());
    EXPECT_EQ(m.rank(), 3u);

    std::vector<double> row = {1.0, 0.3, -0.7};
    EXPECT_NEAR(m.predictRow(row), 0.5 - 0.6 - 0.175, 1e-3);

    const auto pred = m.predict(X);
    const FitMetrics metrics = evaluatePredictions(pred, z);
    EXPECT_LT(metrics.medianAbsPctError, 1e-3);
}

TEST(LinearModel, PredictBeforeFitPanics)
{
    LinearModel m;
    std::vector<double> row = {1.0};
    EXPECT_THROW(m.predictRow(row), PanicError);
}

TEST(LinearModel, PredictRowSizeMismatchPanics)
{
    Matrix X = {{1.0}, {1.0}};
    std::vector<double> z = {1, 1};
    LinearModel m;
    m.fit(X, z);
    std::vector<double> bad = {1.0, 2.0};
    EXPECT_THROW(m.predictRow(bad), PanicError);
}

TEST(LinearModel, ReportsDroppedColumns)
{
    Matrix X(10, 2);
    std::vector<double> z(10);
    Rng rng(5);
    for (std::size_t i = 0; i < 10; ++i) {
        X(i, 0) = rng.nextDouble();
        X(i, 1) = 3.0 * X(i, 0); // collinear
        z[i] = X(i, 0);
    }
    LinearModel m;
    m.fit(X, z);
    // With the default ridge both columns become numerically
    // identifiable but shrunken; either behavior (drop or shrink) is
    // acceptable as long as predictions stay accurate.
    EXPECT_LE(m.rank(), 2u);
}

TEST(LinearModel, WeightedFitUsesWeights)
{
    Matrix X = {{1.0}, {1.0}};
    std::vector<double> z = {0.0, 10.0};
    std::vector<double> w = {3.0, 1.0};
    LinearModel m;
    m.fit(X, z, w);
    EXPECT_NEAR(m.coeffs()[0], 2.5, 1e-3);
}

} // namespace
} // namespace hwsw::stats
