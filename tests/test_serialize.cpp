// Tests for model serialization round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/assert.hpp"
#include "core/genetic.hpp"
#include "core/serialize.hpp"

namespace hwsw::core {
namespace {

Dataset
smallData(std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"a", "b"}) {
        for (int i = 0; i < 60; ++i) {
            ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[7] = std::exp(rng.nextGaussian() + 4.0);
            r.vars[kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 2.0 * r.vars[6] + 4.0 / r.vars[kNumSw];
            ds.add(r);
        }
    }
    return ds;
}

ModelSpec
spec()
{
    ModelSpec s;
    s.genes[6] = 2;
    s.genes[7] = 4; // spline exercises knot serialization
    s.genes[kNumSw] = 3;
    s.interactions = {{6, static_cast<std::uint16_t>(kNumSw)}};
    s.normalize();
    return s;
}

TEST(Serialize, RoundTripPredictionsIdentical)
{
    const Dataset train = smallData(1);
    HwSwModel model;
    model.fit(spec(), train);

    const std::string text = saveModelToString(model);
    const HwSwModel loaded = loadModelFromString(text);

    EXPECT_EQ(loaded.spec(), model.spec());
    EXPECT_EQ(loaded.logResponse(), model.logResponse());
    EXPECT_EQ(loaded.numColumns(), model.numColumns());
    const Dataset probe = smallData(2);
    for (std::size_t i = 0; i < probe.size(); ++i) {
        EXPECT_NEAR(loaded.predict(probe[i]), model.predict(probe[i]),
                    1e-9);
    }
}

TEST(Serialize, RoundTripThroughStream)
{
    HwSwModel model;
    model.fit(spec(), smallData(3));
    std::stringstream ss;
    saveModel(model, ss);
    const HwSwModel loaded = loadModel(ss);
    EXPECT_EQ(loaded.coefficients().size(),
              model.coefficients().size());
}

TEST(Serialize, PreservesLinearResponseFlag)
{
    HwSwModel model;
    model.setLogResponse(false);
    model.fit(spec(), smallData(4));
    const HwSwModel loaded =
        loadModelFromString(saveModelToString(model));
    EXPECT_FALSE(loaded.logResponse());
}

TEST(Serialize, TextIsHumanReadable)
{
    HwSwModel model;
    model.fit(spec(), smallData(5));
    const std::string text = saveModelToString(model);
    EXPECT_NE(text.find("hwsw-model 1"), std::string::npos);
    EXPECT_NE(text.find("genes"), std::string::npos);
    EXPECT_NE(text.find("coeffs"), std::string::npos);
}

TEST(Serialize, RejectsGarbage)
{
    EXPECT_THROW(loadModelFromString("not a model"), FatalError);
    EXPECT_THROW(loadModelFromString("hwsw-model 99\n"), FatalError);
    EXPECT_THROW(loadModelFromString("hwsw-model 1\nlog_response 1\n"
                                     "genes 0"),
                 FatalError);
}

TEST(Serialize, RejectsTruncatedCoefficients)
{
    HwSwModel model;
    model.fit(spec(), smallData(6));
    std::string text = saveModelToString(model);
    text.resize(text.size() - 30); // chop the tail
    EXPECT_THROW(loadModelFromString(text), FatalError);
}

TEST(Serialize, UnfittedModelIsFatal)
{
    HwSwModel model;
    std::ostringstream os;
    EXPECT_THROW(saveModel(model, os), FatalError);
}

} // namespace
} // namespace hwsw::core
