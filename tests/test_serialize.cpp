// Tests for model serialization round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/assert.hpp"
#include "core/genetic.hpp"
#include "core/serialize.hpp"

namespace hwsw::core {
namespace {

Dataset
smallData(std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"a", "b"}) {
        for (int i = 0; i < 60; ++i) {
            ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[7] = std::exp(rng.nextGaussian() + 4.0);
            r.vars[kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 2.0 * r.vars[6] + 4.0 / r.vars[kNumSw];
            ds.add(r);
        }
    }
    return ds;
}

ModelSpec
spec()
{
    ModelSpec s;
    s.genes[6] = 2;
    s.genes[7] = 4; // spline exercises knot serialization
    s.genes[kNumSw] = 3;
    s.interactions = {{6, static_cast<std::uint16_t>(kNumSw)}};
    s.normalize();
    return s;
}

TEST(Serialize, RoundTripPredictionsIdentical)
{
    const Dataset train = smallData(1);
    HwSwModel model;
    model.fit(spec(), train);

    const std::string text = saveModelToString(model);
    const HwSwModel loaded = loadModelFromString(text);

    EXPECT_EQ(loaded.spec(), model.spec());
    EXPECT_EQ(loaded.logResponse(), model.logResponse());
    EXPECT_EQ(loaded.numColumns(), model.numColumns());
    const Dataset probe = smallData(2);
    for (std::size_t i = 0; i < probe.size(); ++i) {
        EXPECT_NEAR(loaded.predict(probe[i]), model.predict(probe[i]),
                    1e-9);
    }
}

TEST(Serialize, RoundTripThroughStream)
{
    HwSwModel model;
    model.fit(spec(), smallData(3));
    std::stringstream ss;
    saveModel(model, ss);
    const HwSwModel loaded = loadModel(ss);
    EXPECT_EQ(loaded.coefficients().size(),
              model.coefficients().size());
}

TEST(Serialize, PreservesLinearResponseFlag)
{
    HwSwModel model;
    model.setLogResponse(false);
    model.fit(spec(), smallData(4));
    const HwSwModel loaded =
        loadModelFromString(saveModelToString(model));
    EXPECT_FALSE(loaded.logResponse());
}

TEST(Serialize, TextIsHumanReadable)
{
    HwSwModel model;
    model.fit(spec(), smallData(5));
    const std::string text = saveModelToString(model);
    EXPECT_NE(text.find("hwsw-model 1"), std::string::npos);
    EXPECT_NE(text.find("genes"), std::string::npos);
    EXPECT_NE(text.find("coeffs"), std::string::npos);
}

TEST(Serialize, RejectsGarbage)
{
    EXPECT_THROW(loadModelFromString("not a model"), FatalError);
    EXPECT_THROW(loadModelFromString("hwsw-model 99\n"), FatalError);
    EXPECT_THROW(loadModelFromString("hwsw-model 1\nlog_response 1\n"
                                     "genes 0"),
                 FatalError);
}

TEST(Serialize, RejectsTruncatedCoefficients)
{
    HwSwModel model;
    model.fit(spec(), smallData(6));
    std::string text = saveModelToString(model);
    text.resize(text.size() - 30); // chop the tail
    EXPECT_THROW(loadModelFromString(text), FatalError);
}

TEST(Serialize, UnfittedModelIsFatal)
{
    HwSwModel model;
    std::ostringstream os;
    EXPECT_THROW(saveModel(model, os), FatalError);
}

// --- Property tests -----------------------------------------------
//
// The serving subsystem ships models over the wire as this text
// format, so the round trip has to be *bit-identical* (doubles are
// written as %.17g) and any truncation has to die with a clean
// FatalError, never a crash or a silent partial model.

/** A dataset rich enough that any random spec stays identifiable. */
Dataset
richData(std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"a", "b", "c"}) {
        for (int i = 0; i < 120; ++i) {
            ProfileRecord r;
            r.app = app;
            for (std::size_t v = 0; v < kNumVars; ++v)
                r.vars[v] = std::exp(rng.nextGaussian() * 0.5 + 1.0);
            double y = 0.4;
            for (std::size_t v = 0; v < kNumVars; ++v)
                y += 0.03 * (v % 5) * std::log(r.vars[v] + 1.0);
            r.perf = y + 0.01 * rng.nextGaussian();
            ds.add(r);
        }
    }
    return ds;
}

TEST(SerializeProperty, RandomModelsRoundTripBitIdentical)
{
    const Dataset train = richData(11);
    const Dataset probe = richData(12);
    Rng rng(99);
    int fitted = 0;
    for (int trial = 0; trial < 12; ++trial) {
        const ModelSpec s = ModelSpec::random(rng, 0.4, 6);
        HwSwModel model;
        try {
            model.fit(s, train);
        } catch (const FatalError &) {
            continue; // degenerate random spec; not what we test here
        }
        ++fitted;
        const HwSwModel loaded =
            loadModelFromString(saveModelToString(model));
        EXPECT_EQ(loaded.spec(), model.spec());
        ASSERT_EQ(loaded.coefficients().size(),
                  model.coefficients().size());
        for (std::size_t i = 0; i < model.coefficients().size(); ++i) {
            EXPECT_EQ(loaded.coefficients()[i],
                      model.coefficients()[i])
                << "coefficient " << i << " of trial " << trial;
        }
        for (std::size_t i = 0; i < probe.size(); ++i) {
            EXPECT_EQ(loaded.predict(probe[i]), model.predict(probe[i]))
                << "prediction " << i << " of trial " << trial;
        }
    }
    EXPECT_GE(fitted, 6) << "random specs almost never fit; test is "
                            "not exercising the round trip";
}

TEST(SerializeProperty, EveryTruncationFailsCleanly)
{
    HwSwModel model;
    model.fit(spec(), smallData(7));
    const std::string text = saveModelToString(model);
    ASSERT_GT(text.size(), 64u);
    // Chop at a spread of points across the whole document, plus
    // every point in the sensitive header region. (Stop short of the
    // last byte: dropping only the final newline is harmless.)
    for (std::size_t cut = 0; cut + 1 < text.size();
         cut += (cut < 64 ? 1 : 17)) {
        const std::string chopped = text.substr(0, cut);
        EXPECT_THROW(loadModelFromString(chopped), FatalError)
            << "truncation at byte " << cut;
    }
}

TEST(SerializeProperty, CorruptedTokensFailCleanly)
{
    HwSwModel model;
    model.fit(spec(), smallData(8));
    const std::string text = saveModelToString(model);
    Rng rng(5);
    for (int trial = 0; trial < 40; ++trial) {
        std::string bad = text;
        const std::size_t at = static_cast<std::size_t>(
            rng.nextInt(static_cast<int>(bad.size())));
        bad[at] = "xz@#"[trial % 4];
        try {
            const HwSwModel loaded = loadModelFromString(bad);
            // A flip inside a numeric literal can still parse (e.g.
            // a digit changed); the model must then still be usable.
            (void)loaded.predict(smallData(9)[0]);
        } catch (const FatalError &) {
            // Clean rejection is the expected common case.
        }
        // Anything else (PanicError, segfault, std::bad_alloc from a
        // bogus length) fails the test by escaping the catch.
    }
}

} // namespace
} // namespace hwsw::core
