// Unit tests for the fault-injection registry: the global gate, the
// per-point trip disciplines (every hit, every-Nth, one-shot,
// probabilistic), spec-string parsing, and the site helpers. The
// registry is process-global, so every test starts and ends from a
// clean, disabled state.
#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <vector>

#include "common/fault/fault.hpp"

namespace hwsw {
namespace {

class FaultRegistry : public ::testing::Test
{
  protected:
    void SetUp() override { clean(); }
    void TearDown() override { clean(); }

    static fault::FaultRegistry &reg()
    {
        return fault::FaultRegistry::instance();
    }

    static void clean()
    {
        reg().reset();
        reg().setEnabled(false);
    }
};

TEST_F(FaultRegistry, DisabledGateIsInert)
{
    reg().arm("t.gate");
    // Gate off: the site helper returns false without consulting the
    // registry, so the armed point never even counts a hit.
    EXPECT_FALSE(fault::enabled());
    EXPECT_FALSE(fault::point("t.gate"));
    EXPECT_EQ(reg().stats("t.gate").hits, 0u);
    EXPECT_EQ(reg().stats("t.gate").trips, 0u);
}

TEST_F(FaultRegistry, ArmedPointTripsEveryHit)
{
    reg().setEnabled(true);
    reg().arm("t.always");
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(fault::point("t.always"));
    const fault::PointStats st = reg().stats("t.always");
    EXPECT_EQ(st.hits, 3u);
    EXPECT_EQ(st.trips, 3u);
    EXPECT_TRUE(st.armed);
}

TEST_F(FaultRegistry, UnarmedNameNeverTrips)
{
    reg().setEnabled(true);
    EXPECT_FALSE(fault::point("t.ghost"));
    EXPECT_EQ(reg().stats("t.ghost").hits, 0u);
}

TEST_F(FaultRegistry, EveryNthTripsOnSchedule)
{
    reg().setEnabled(true);
    fault::PointConfig cfg;
    cfg.everyNth = 3;
    reg().arm("t.nth", cfg);
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(fault::point("t.nth"));
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false,
                                        false, true}));
    EXPECT_EQ(reg().stats("t.nth").trips, 2u);
}

TEST_F(FaultRegistry, OneShotDisarmsAfterFirstTrip)
{
    reg().setEnabled(true);
    fault::PointConfig cfg;
    cfg.oneShot = true;
    reg().arm("t.once", cfg);
    EXPECT_TRUE(fault::point("t.once"));
    EXPECT_FALSE(fault::point("t.once"));
    EXPECT_FALSE(fault::point("t.once"));
    const fault::PointStats st = reg().stats("t.once");
    EXPECT_EQ(st.trips, 1u);
    EXPECT_EQ(st.hits, 1u); // unarmed hits are not counted
    EXPECT_FALSE(st.armed);
}

TEST_F(FaultRegistry, ProbabilityStreamIsSeedDeterministic)
{
    reg().setEnabled(true);
    fault::PointConfig cfg;
    cfg.probability = 0.5;
    reg().arm("t.prob", cfg);

    auto draw = [&] {
        std::vector<bool> out;
        reg().reseed(123);
        for (int i = 0; i < 64; ++i)
            out.push_back(fault::point("t.prob"));
        return out;
    };
    const std::vector<bool> first = draw();
    const std::vector<bool> second = draw();
    EXPECT_EQ(first, second);

    // p=0.5 over 64 trials: all-trips or no-trips means the
    // probability gate is not being consulted at all.
    int trips = 0;
    for (const bool b : first)
        trips += b ? 1 : 0;
    EXPECT_GT(trips, 0);
    EXPECT_LT(trips, 64);
}

TEST_F(FaultRegistry, FailPointYieldsConfiguredErrno)
{
    reg().setEnabled(true);
    fault::PointConfig cfg;
    cfg.errnoValue = ECONNRESET;
    reg().arm("t.io", cfg);
    int err = 0;
    EXPECT_TRUE(fault::failPoint("t.io", err));
    EXPECT_EQ(err, ECONNRESET);

    // Unarmed points never fire and default to EIO if queried.
    err = 0;
    EXPECT_FALSE(fault::failPoint("t.other", err));
    EXPECT_EQ(err, 0);
    EXPECT_EQ(reg().errnoFor("t.other"), EIO);
}

TEST_F(FaultRegistry, SkewPointYieldsConfiguredSeconds)
{
    reg().setEnabled(true);
    fault::PointConfig cfg;
    cfg.skewSeconds = 1.5;
    reg().arm("t.skew", cfg);
    EXPECT_DOUBLE_EQ(fault::skewPoint("t.skew"), 1.5);
    EXPECT_DOUBLE_EQ(fault::skewPoint("t.noskew"), 0.0);
}

TEST_F(FaultRegistry, ArmSpecParsesEveryOption)
{
    // Behavior, not introspection: each knob is observable through
    // the trip discipline or the site helpers.
    EXPECT_TRUE(reg().armSpec("t.nth:nth=2,once"));
    EXPECT_TRUE(reg().armSpec("t.knobs:errno=104,skew=1.5"));
    EXPECT_TRUE(reg().armSpec("t.plain"));
    reg().setEnabled(true);

    EXPECT_FALSE(fault::point("t.nth")); // hit 1 of 2
    EXPECT_TRUE(fault::point("t.nth"));  // hit 2 trips...
    EXPECT_FALSE(fault::point("t.nth")); // ...and once disarmed it

    EXPECT_EQ(reg().errnoFor("t.knobs"), 104);
    EXPECT_DOUBLE_EQ(reg().skewFor("t.knobs"), 1.5);
    EXPECT_TRUE(fault::point("t.plain"));
}

TEST_F(FaultRegistry, ArmSpecRejectsMalformedSpecs)
{
    const char *bad[] = {
        "",          ":p=1",      "x:p=nope", "x:p=1.5",
        "x:p=-0.1",  "x:nth=0",   "x:nth=a",  "x:errno=0",
        "x:errno=-1", "x:skew=z", "x:wat=1",
    };
    for (const char *spec : bad) {
        std::string err;
        EXPECT_FALSE(reg().armSpec(spec, &err)) << spec;
        EXPECT_FALSE(err.empty()) << spec;
    }
    // A malformed spec must not half-arm the point.
    reg().setEnabled(true);
    EXPECT_FALSE(fault::point("x"));
}

TEST_F(FaultRegistry, DisarmStopsTripsAndRearmReplacesConfig)
{
    reg().setEnabled(true);
    reg().arm("t.flip");
    EXPECT_TRUE(fault::point("t.flip"));
    reg().disarm("t.flip");
    EXPECT_FALSE(fault::point("t.flip"));

    fault::PointConfig cfg;
    cfg.everyNth = 2;
    reg().arm("t.flip", cfg); // re-arm with a new discipline
    EXPECT_TRUE(fault::point("t.flip")); // hit 2 overall: trips
    EXPECT_FALSE(fault::point("t.flip"));
}

TEST_F(FaultRegistry, ResetClearsEveryPoint)
{
    reg().setEnabled(true);
    reg().arm("t.a");
    reg().arm("t.b");
    EXPECT_TRUE(fault::point("t.a"));
    reg().reset();
    EXPECT_FALSE(fault::point("t.a"));
    EXPECT_FALSE(fault::point("t.b"));
    EXPECT_TRUE(reg().all().empty());
}

TEST_F(FaultRegistry, AllListsPointsSortedByName)
{
    reg().arm("t.zz");
    reg().arm("t.aa");
    const auto all = reg().all();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].first, "t.aa");
    EXPECT_EQ(all[1].first, "t.zz");
    EXPECT_TRUE(all[0].second.armed);
}

} // namespace
} // namespace hwsw
