// Distributed island-model search: the coordinator/worker path over
// real loopback sockets must reproduce the in-process reference
// (and, for one island, the plain GeneticSearch) bit-identically —
// for any worker placement, start order, and across a worker
// kill + checkpoint-resume. Wall-clock fields and cache counters are
// excluded: they are the only non-deterministic parts of a GaResult.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <thread>

#include "common/assert.hpp"
#include "common/fault/fault.hpp"
#include "core/island.hpp"
#include "serve/island.hpp"
#include "serve/server.hpp"

namespace hwsw::core {
namespace {

Dataset
detData(std::size_t per_app, std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"alpha", "beta", "gamma"}) {
        const double base = 1.0 + 0.5 * (app[0] - 'a');
        for (std::size_t i = 0; i < per_app; ++i) {
            ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[7] = rng.nextUniform(10, 1000);
            r.vars[kNumSw] = 1 << rng.nextInt(4);
            r.vars[kNumSw + 4] = 16 << rng.nextInt(4);
            r.perf = base + 2.0 * r.vars[6] + 3.0 / r.vars[kNumSw] +
                0.3 * std::sqrt(r.vars[7]) * 16.0 /
                    r.vars[kNumSw + 4];
            ds.add(r);
        }
    }
    return ds;
}

IslandOptions
baseOpts(std::size_t islands)
{
    IslandOptions o;
    o.ga.populationSize = 12;
    o.ga.generations = 6;
    o.ga.numThreads = 1;
    o.ga.seed = 1234;
    o.islands = islands;
    o.migrationInterval = 2;
    o.migrants = 2;
    return o;
}

/** Bit-exact equality of everything deterministic in a GaResult. */
void
expectSameResult(const GaResult &a, const GaResult &b,
                 const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.best.spec, b.best.spec);
    EXPECT_EQ(a.best.fitness, b.best.fitness);
    EXPECT_EQ(a.best.sumMedianError, b.best.sumMedianError);

    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        SCOPED_TRACE("generation " + std::to_string(g));
        EXPECT_EQ(a.history[g].generation, b.history[g].generation);
        EXPECT_EQ(a.history[g].bestFitness, b.history[g].bestFitness);
        EXPECT_EQ(a.history[g].meanFitness, b.history[g].meanFitness);
        EXPECT_EQ(a.history[g].bestSumMedianError,
                  b.history[g].bestSumMedianError);
    }

    ASSERT_EQ(a.population.size(), b.population.size());
    for (std::size_t i = 0; i < a.population.size(); ++i) {
        SCOPED_TRACE("rank " + std::to_string(i));
        EXPECT_EQ(a.population[i].spec, b.population[i].spec);
        EXPECT_EQ(a.population[i].fitness, b.population[i].fitness);
    }
}

/** A coordinator server + one worker thread per island, real TCP. */
GaResult
runDistributed(const Dataset &data, const IslandOptions &opts,
               std::vector<std::size_t> start_order = {},
               double stagger_seconds = 0.0)
{
    auto registry = std::make_shared<serve::ModelRegistry>();
    serve::IslandCoordinator coordinator(opts);
    serve::Server server(registry, {}, nullptr, &coordinator);
    server.start();

    if (start_order.empty())
        for (std::size_t i = 0; i < opts.islands; ++i)
            start_order.push_back(i);

    std::vector<std::thread> workers;
    workers.reserve(start_order.size());
    for (const std::size_t island : start_order) {
        workers.emplace_back([&data, &opts, island, &server] {
            serve::IslandWorkerOptions w;
            w.port = server.port();
            w.island = island;
            w.pollSeconds = 0.005;
            serve::runIslandWorker(data, opts, w);
        });
        if (stagger_seconds > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(stagger_seconds));
    }
    for (std::thread &t : workers)
        t.join();

    EXPECT_TRUE(coordinator.waitForReports(30.0));
    GaResult result = coordinator.result();
    server.stop();
    return result;
}

TEST(IslandModel, SingleIslandMatchesPlainSearch)
{
    const Dataset data = detData(40, 21);
    const IslandOptions opts = baseOpts(1);

    GeneticSearch plain(data, opts.ga);
    const GaResult reference = plain.run();
    const GaResult island = runIslandModel(data, opts);
    expectSameResult(reference, island, "1 island vs plain run");
}

TEST(IslandModel, ReferenceRunIsRepeatable)
{
    const Dataset data = detData(40, 22);
    const IslandOptions opts = baseOpts(3);
    const GaResult a = runIslandModel(data, opts);
    const GaResult b = runIslandModel(data, opts);
    expectSameResult(a, b, "repeat in-process island run");
}

TEST(IslandModel, ThreadCountInvariant)
{
    const Dataset data = detData(40, 23);
    IslandOptions opts = baseOpts(2);
    const GaResult serial = runIslandModel(data, opts);
    opts.ga.numThreads = 4;
    const GaResult parallel = runIslandModel(data, opts);
    expectSameResult(serial, parallel, "1 vs 4 eval threads");
}

TEST(IslandModel, EvolverCheckpointResumeMatches)
{
    const Dataset data = detData(40, 24);
    IslandOptions opts = baseOpts(2);
    opts.migrants = 0; // no barriers: one island runs standalone

    const GaResult uninterrupted = runIslandModel(data, opts);

    const std::string dir =
        ::testing::TempDir() + "hwsw-island-resume";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    IslandOptions ckpt = opts;
    ckpt.checkpointDir = dir;

    // Evolve island 0 partway (checkpointing every generation),
    // drop the evolver mid-run, and resume in a fresh one.
    {
        IslandEvolver first(data, ckpt, 0);
        // migrants == 0: advance() only returns when finished, so
        // interrupt via the per-island kill switch instead.
        auto &faults = fault::FaultRegistry::instance();
        faults.reset();
        faults.setEnabled(true);
        ASSERT_TRUE(faults.armSpec("island.worker.kill.0:nth=3,once"));
        EXPECT_THROW(first.advance(), FatalError);
        faults.setEnabled(false);
        faults.reset();
        EXPECT_FALSE(first.finished());
    }
    IslandEvolver resumed(data, ckpt, 0);
    EXPECT_TRUE(resumed.resumeFromCheckpoint());
    EXPECT_GT(resumed.generation(), 0u);
    while (resumed.advance()) {
    }
    const IslandReport after = resumed.report();

    IslandEvolver whole(data, opts, 0);
    while (whole.advance()) {
    }
    const IslandReport expected = whole.report();

    ASSERT_EQ(after.history.size(), expected.history.size());
    for (std::size_t g = 0; g < expected.history.size(); ++g) {
        EXPECT_EQ(after.history[g].bestFitness,
                  expected.history[g].bestFitness);
        EXPECT_EQ(after.history[g].meanFitness,
                  expected.history[g].meanFitness);
    }
    ASSERT_EQ(after.population.size(), expected.population.size());
    for (std::size_t i = 0; i < expected.population.size(); ++i) {
        EXPECT_EQ(after.population[i].spec,
                  expected.population[i].spec);
        EXPECT_EQ(after.population[i].fitness,
                  expected.population[i].fitness);
    }
    std::filesystem::remove_all(dir);
}

TEST(IslandModel, ScoredSpecWireRoundTripIsExact)
{
    Rng rng(7);
    for (int i = 0; i < 20; ++i) {
        ScoredSpec s;
        s.spec = ModelSpec::random(rng, 0.45, 6);
        s.fitness = rng.nextUniform(1e-12, 3.0);
        s.sumMedianError = rng.nextUniform(0.0, 10.0);
        std::ostringstream os;
        serve::saveScoredSpec(s, os);
        std::istringstream is(os.str());
        const ScoredSpec back = serve::loadScoredSpec(is);
        EXPECT_EQ(s.spec, back.spec);
        EXPECT_EQ(s.fitness, back.fitness);
        EXPECT_EQ(s.sumMedianError, back.sumMedianError);
    }
}

TEST(DistributedSearch, BitIdenticalAcrossIslandCounts)
{
    const Dataset data = detData(40, 31);
    for (const std::size_t islands : {1u, 2u, 4u}) {
        const IslandOptions opts = baseOpts(islands);
        const GaResult reference = runIslandModel(data, opts);
        const GaResult distributed = runDistributed(data, opts);
        expectSameResult(reference, distributed,
                         std::to_string(islands) + " islands");
    }
}

TEST(DistributedSearch, OneDistributedIslandMatchesPlainSearch)
{
    const Dataset data = detData(40, 32);
    const IslandOptions opts = baseOpts(1);
    GeneticSearch plain(data, opts.ga);
    const GaResult reference = plain.run();
    const GaResult distributed = runDistributed(data, opts);
    expectSameResult(reference, distributed,
                     "1 distributed island vs plain run");
}

TEST(DistributedSearch, PlacementAndStartOrderInvariant)
{
    const Dataset data = detData(40, 33);
    const IslandOptions opts = baseOpts(3);
    const GaResult reference = runIslandModel(data, opts);

    const GaResult reversed =
        runDistributed(data, opts, {2, 1, 0});
    expectSameResult(reference, reversed, "reverse start order");

    const GaResult staggered =
        runDistributed(data, opts, {1, 2, 0}, 0.05);
    expectSameResult(reference, staggered, "staggered starts");
}

TEST(DistributedSearch, MigrationIntervalEdgeCases)
{
    const Dataset data = detData(40, 34);

    // G = 1: a barrier at every generation boundary.
    IslandOptions every = baseOpts(2);
    every.migrationInterval = 1;
    expectSameResult(runIslandModel(data, every),
                     runDistributed(data, every), "interval 1");

    // G > generations: no barrier is ever reached; the islands
    // evolve fully independently.
    IslandOptions never = baseOpts(2);
    never.migrationInterval = 100;
    const GaResult no_barrier = runDistributed(data, never);
    expectSameResult(runIslandModel(data, never), no_barrier,
                     "interval past the horizon");

    // ... and is equivalent to disabling migration outright.
    IslandOptions off = baseOpts(2);
    off.migrants = 0;
    expectSameResult(runIslandModel(data, off), no_barrier,
                     "no barriers == migration off");
}

TEST(DistributedSearch, WorkerKillMidGenerationRecovers)
{
    const Dataset data = detData(40, 35);
    IslandOptions opts = baseOpts(2);
    const GaResult reference = runIslandModel(data, opts);

    const std::string dir = ::testing::TempDir() + "hwsw-dist-kill";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    opts.checkpointDir = dir;

    auto registry = std::make_shared<serve::ModelRegistry>();
    serve::IslandCoordinator coordinator(opts);
    serve::Server server(registry, {}, nullptr, &coordinator);
    server.start();

    auto &faults = fault::FaultRegistry::instance();
    faults.reset();
    faults.setEnabled(true);
    // Island 1 dies mid-generation on its second scoring pass —
    // after the work, before the checkpoint. `once` lets the
    // respawned worker run to completion.
    ASSERT_TRUE(faults.armSpec("island.worker.kill.1:nth=2,once"));

    const auto run_worker = [&](std::size_t island) {
        serve::IslandWorkerOptions w;
        w.port = server.port();
        w.island = island;
        w.pollSeconds = 0.005;
        serve::runIslandWorker(data, opts, w);
    };

    bool killed = false;
    std::thread worker0(run_worker, 0);
    std::thread worker1([&] {
        try {
            run_worker(1);
        } catch (const FatalError &) {
            killed = true; // injected mid-generation death
        }
        if (killed) {
            // The supervisor knows the worker is dead: revoke its
            // still-live lease instead of waiting out the clock,
            // then respawn. The replacement (a fresh worker
            // identity) resumes from the checkpoint.
            coordinator.revokeLease(1);
            run_worker(1);
        }
    });
    worker0.join();
    worker1.join();
    faults.setEnabled(false);
    faults.reset();

    EXPECT_TRUE(killed);
    ASSERT_TRUE(coordinator.waitForReports(30.0));
    const GaResult recovered = coordinator.result();
    server.stop();
    expectSameResult(reference, recovered, "kill + resume");
    EXPECT_GT(coordinator.stats().duplicatePosts +
                  coordinator.stats().joins,
              2u); // the respawned worker re-joined
    std::filesystem::remove_all(dir);
}

TEST(DistributedSearch, ChaosMultiFaultRunStaysBitIdentical)
{
    const Dataset data = detData(40, 36);
    IslandOptions opts = baseOpts(4);
    const GaResult reference = runIslandModel(data, opts);

    const std::string dir = ::testing::TempDir() + "hwsw-dist-chaos";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    opts.checkpointDir = dir;

    auto registry = std::make_shared<serve::ModelRegistry>();
    serve::IslandCoordinator coordinator(opts);
    serve::Server server(registry, {}, nullptr, &coordinator);
    server.start();

    auto &faults = fault::FaultRegistry::instance();
    faults.reset();
    faults.setEnabled(true);
    // Three distinct fault domains in one run:
    //  - island 1 is SIGKILLed mid-generation (after scoring,
    //    before the checkpoint) and respawned;
    //  - island 2 stalls for 200 ms mid-run (slowdown only — far
    //    inside the lease);
    //  - island 3 is network-partitioned from the coordinator until
    //    the supervisor heals the link and respawns it.
    ASSERT_TRUE(faults.armSpec("island.worker.kill.1:nth=2,once"));
    ASSERT_TRUE(
        faults.armSpec("island.worker.stall.2:nth=3,once,skew=0.2"));
    ASSERT_TRUE(faults.armSpec("island.partition.3"));

    const auto run_worker = [&](std::size_t island) {
        serve::IslandWorkerOptions w;
        w.port = server.port();
        w.island = island;
        w.pollSeconds = 0.005;
        serve::runIslandWorker(data, opts, w);
    };

    bool killed = false;
    bool partitioned = false;
    std::vector<std::thread> workers;
    workers.emplace_back(run_worker, 0);
    workers.emplace_back([&] {
        try {
            run_worker(1);
        } catch (const FatalError &) {
            killed = true;
        }
        if (killed) {
            coordinator.revokeLease(1);
            run_worker(1); // resumes from the checkpoint
        }
    });
    workers.emplace_back(run_worker, 2);
    workers.emplace_back([&] {
        try {
            run_worker(3);
        } catch (const FatalError &) {
            partitioned = true; // cut off from the coordinator
        }
        if (partitioned) {
            // Supervisor heals the partition and respawns.
            faults.disarm("island.partition.3");
            coordinator.revokeLease(3);
            run_worker(3);
        }
    });
    for (std::thread &t : workers)
        t.join();

    EXPECT_TRUE(killed);
    EXPECT_TRUE(partitioned);
    EXPECT_GT(faults.stats("island.worker.stall.2").trips, 0u);
    faults.setEnabled(false);
    faults.reset();

    ASSERT_TRUE(coordinator.waitForReports(30.0));
    const GaResult recovered = coordinator.result();
    EXPECT_EQ(coordinator.stats().leaseExpiries, 0u);
    server.stop();
    // Kill + stall + partition taken together leave no trace in the
    // merged outcome: sync mode stays bit-identical.
    expectSameResult(reference, recovered, "chaos multi-fault run");
    std::filesystem::remove_all(dir);
}

TEST(DistributedSearch, CoordinatorValidatesRequests)
{
    const IslandOptions opts = baseOpts(2);
    serve::IslandCoordinator coordinator(opts);

    const auto call = [&](std::string_view verb,
                          std::vector<std::string_view> args,
                          std::string_view body = "") {
        return coordinator.handle(
            verb, std::span<const std::string_view>(args), body);
    };

    EXPECT_TRUE(call("island.nope", {}).starts_with("error"));
    EXPECT_TRUE(call("island.join", {}).starts_with("error"));
    EXPECT_TRUE(call("island.join", {"9", "w1"})
                    .starts_with("error"));
    EXPECT_TRUE(call("island.join", {"0"}).starts_with("error"));
    EXPECT_TRUE(call("island.join", {"0", ""}).starts_with("error"));
    EXPECT_TRUE(call("island.join", {"0", "w1"})
                    .starts_with("ok config"));
    // A live lease refuses other workers but re-joins its owner.
    EXPECT_TRUE(call("island.join", {"0", "w2"})
                    .starts_with("error"));
    EXPECT_TRUE(call("island.join", {"0", "w1"})
                    .starts_with("ok config"));
    // Heartbeats: owner renews, strangers are fenced.
    EXPECT_TRUE(call("island.heartbeat", {"0", "w1", "3", "1"})
                    .starts_with("ok lease"));
    EXPECT_EQ(call("island.heartbeat", {"0", "w2", "3", "1"}),
              "ok lost");
    EXPECT_TRUE(call("island.heartbeat", {"9", "w1", "3", "1"})
                    .starts_with("error"));
    EXPECT_TRUE(
        call("island.heartbeat", {"0", "w1"}).starts_with("error"));
    // Not a barrier generation (interval 2).
    EXPECT_TRUE(call("island.migrate", {"0", "3", "2"})
                    .starts_with("error"));
    // Wrong migrant count.
    EXPECT_TRUE(call("island.migrate", {"0", "2", "5"})
                    .starts_with("error"));
    // Malformed body.
    EXPECT_TRUE(call("island.migrate", {"0", "2", "2"}, "garbage")
                    .starts_with("error"));
    // Reporting the wrong island in the body.
    EXPECT_TRUE(call("island.report", {"0"}, "island 1\n")
                    .starts_with("error"));

    coordinator.stop();
    EXPECT_EQ(call("island.join", {"0", "w1"}), "stop");
    EXPECT_EQ(call("island.heartbeat", {"0", "w1", "3", "1"}),
              "stop");
    EXPECT_EQ(call("island.stop", {}), "ok stopping");
}

TEST(DistributedSearch, ServerWithoutCoordinatorRefusesIslandVerbs)
{
    auto registry = std::make_shared<serve::ModelRegistry>();
    serve::Server server(registry, {});
    server.start();
    serve::Client client("127.0.0.1", server.port());
    const std::string response = client.request("island.join 0");
    EXPECT_TRUE(response.starts_with("error"));
    client.quit();
    server.stop();
}

} // namespace
} // namespace hwsw::core
