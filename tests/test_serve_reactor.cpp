// Event-driven serving core tests: incremental frame decoding,
// pipelined multiplexed requests, partial-write flush paths, accept
// fault handling (EMFILE/ECONNABORTED), and slow-loris idle-timeout
// enforcement — driven through raw sockets and the shared fault
// points. Part of the tier15_reactor aggregate (see CMakeLists.txt)
// and expected to run under -DHWSW_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fault/fault.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

#include "serve_test_util.hpp"

namespace hwsw::serve {
namespace {

class ServeReactor : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        clean();
        if (server)
            server->stop();
    }

    static void clean()
    {
        fault::FaultRegistry::instance().reset();
        fault::FaultRegistry::instance().setEnabled(false);
    }

    static void armAndEnable(std::string_view spec)
    {
        std::string err;
        ASSERT_TRUE(
            fault::FaultRegistry::instance().armSpec(spec, &err))
            << err;
        fault::FaultRegistry::instance().setEnabled(true);
    }

    void startServer(ServerOptions opts = defaultOpts())
    {
        clean();
        registry = std::make_shared<ModelRegistry>();
        registry->publish("default", testutil::makeModel(), "boot");
        server = std::make_unique<Server>(registry, opts);
        server->start();
    }

    static ServerOptions defaultOpts()
    {
        ServerOptions o;
        o.engine.threads = 2;
        return o;
    }

    /** Raw connected socket to the server (caller closes). */
    int rawConnect() const
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server->port());
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        return fd;
    }

    Client connect() const
    {
        return Client("127.0.0.1", server->port());
    }

    /**
     * Poll @p fd until the peer closes it. @return true when EOF
     * (recv == 0) arrives within @p millis.
     */
    static bool awaitEof(int fd, int millis)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(millis);
        char byte = 0;
        while (std::chrono::steady_clock::now() < deadline) {
            pollfd p{fd, POLLIN, 0};
            if (::poll(&p, 1, 50) <= 0)
                continue;
            const ssize_t got = ::recv(fd, &byte, 1, 0);
            if (got == 0)
                return true; // clean EOF
            if (got < 0 && errno != EINTR && errno != EAGAIN)
                return true; // reset also counts as severed
        }
        return false;
    }

    std::shared_ptr<ModelRegistry> registry;
    std::unique_ptr<Server> server;
};

TEST_F(ServeReactor, FrameDecoderHandlesArbitraryChunking)
{
    // Pure decoder unit test: two frames plus a partial third, fed
    // one byte at a time, come out whole and in order.
    std::string wire;
    appendFrame(wire, "first frame");
    appendFrame(wire, ""); // empty payloads are legal frames
    std::string partial;
    appendFrame(partial, "tail");
    wire.append(partial, 0, partial.size() - 2);

    FrameDecoder dec;
    std::vector<std::string> frames;
    std::string payload;
    for (const char byte : wire) {
        dec.feed(&byte, 1);
        while (dec.next(payload))
            frames.push_back(payload);
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0], "first frame");
    EXPECT_EQ(frames[1], "");
    EXPECT_TRUE(dec.midFrame());
    EXPECT_EQ(dec.buffered(), partial.size() - 2);
    EXPECT_FALSE(dec.oversized());

    // Completing the third frame drains the buffer exactly.
    dec.feed(partial.data() + partial.size() - 2, 2);
    ASSERT_TRUE(dec.next(payload));
    EXPECT_EQ(payload, "tail");
    EXPECT_FALSE(dec.midFrame());
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST_F(ServeReactor, FrameDecoderLatchesOversizedFrames)
{
    FrameDecoder dec;
    const unsigned char header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    dec.feed(reinterpret_cast<const char *>(header), 4);
    std::string payload;
    EXPECT_FALSE(dec.next(payload));
    EXPECT_TRUE(dec.oversized());
    // Oversized is latched: further bytes never produce frames.
    std::string more;
    appendFrame(more, "ignored");
    dec.feed(more.data(), more.size());
    EXPECT_FALSE(dec.next(payload));
    EXPECT_TRUE(dec.oversized());
}

TEST_F(ServeReactor, TrickledBytesReassembleIntoRequests)
{
    // The wire arrives one byte per read on the server (injected
    // short reads) *and* one byte per write from the client: the
    // reactor's incremental decoder must reassemble frames with no
    // corruption, across multiple requests on one connection.
    startServer();
    armAndEnable("proto.read.short");

    const int fd = rawConnect();
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const SnapshotPtr snap = registry->lookup("default");
    Rng rng(1);
    for (int iter = 0; iter < 3; ++iter) {
        const FeatureVector row = testutil::makeRow(rng);
        std::string wire;
        appendFrame(wire, makePredictRequest("default", row));
        for (const char byte : wire)
            ASSERT_EQ(::send(fd, &byte, 1, MSG_NOSIGNAL), 1);

        std::string response;
        ASSERT_TRUE(readFrame(fd, response));
        // "ok <version> <value>"
        const auto tokens = splitTokens(response);
        ASSERT_EQ(tokens.size(), 3u) << response;
        ASSERT_EQ(tokens[0], "ok");
        EXPECT_EQ(std::string(tokens[2]),
                  formatDouble(
                      snap->model.predict(testutil::rowRecord(row))));
    }
    ::close(fd);
}

TEST_F(ServeReactor, PipelinedRequestsAnswerInOrder)
{
    // Many requests written back-to-back before any response is read:
    // the reactor must answer each one, in order, on one connection.
    startServer();
    const int fd = rawConnect();
    const SnapshotPtr snap = registry->lookup("default");

    Rng rng(2);
    std::vector<FeatureVector> rows;
    std::string wire;
    for (int i = 0; i < 16; ++i) {
        rows.push_back(testutil::makeRow(rng));
        appendFrame(wire, makePredictRequest("default", rows.back()));
        if (i == 7)
            appendFrame(wire, makePingRequest()); // interleaved verb
    }
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));

    for (std::size_t i = 0; i < rows.size() + 1; ++i) {
        std::string response;
        ASSERT_TRUE(readFrame(fd, response)) << "response " << i;
        if (i == 8) {
            EXPECT_EQ(response, "ok pong");
            continue;
        }
        const std::size_t r = i < 8 ? i : i - 1;
        const auto tokens = splitTokens(response);
        ASSERT_EQ(tokens.size(), 3u) << response;
        EXPECT_EQ(std::string(tokens[2]),
                  formatDouble(snap->model.predict(
                      testutil::rowRecord(rows[r]))));
    }
    ::close(fd);
}

TEST_F(ServeReactor, BackpressuredPipelineFlushesCompletely)
{
    // Large batch responses pile up while the client refuses to read:
    // the reactor's write buffer grows, the kernel buffer fills, and
    // the EPOLLOUT flush path must eventually deliver every byte of
    // every response once the client starts draining.
    startServer();
    const int fd = rawConnect();
    const SnapshotPtr snap = registry->lookup("default");

    Rng rng(3);
    std::vector<FeatureVector> rows;
    for (int i = 0; i < 256; ++i)
        rows.push_back(testutil::makeRow(rng));
    std::string wire;
    constexpr int kPipelined = 24;
    for (int i = 0; i < kPipelined; ++i)
        appendFrame(wire, makeBatchRequest("default", rows));

    // A writer thread pushes the pipelined requests (the send itself
    // can block once both directions are full).
    std::thread writer([&] {
        std::size_t off = 0;
        while (off < wire.size()) {
            const ssize_t n = ::send(fd, wire.data() + off,
                                     wire.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                break;
            off += static_cast<std::size_t>(n);
        }
    });

    for (int i = 0; i < kPipelined; ++i) {
        std::string response;
        ASSERT_TRUE(readFrame(fd, response)) << "response " << i;
        // "ok <version> <k> <v1> ... <vk>" on one line.
        const auto tokens = splitTokens(response);
        ASSERT_EQ(tokens.size(), 3u + rows.size()) << "response " << i;
        ASSERT_EQ(tokens[0], "ok");
        ASSERT_EQ(std::string(tokens[2]),
                  std::to_string(rows.size()));
        // Spot-check the first and last value of each response.
        EXPECT_EQ(std::string(tokens[3]),
                  formatDouble(snap->model.predict(
                      testutil::rowRecord(rows.front()))));
        EXPECT_EQ(std::string(tokens.back()),
                  formatDouble(snap->model.predict(
                      testutil::rowRecord(rows.back()))));
    }
    writer.join();
    ::close(fd);
}

TEST_F(ServeReactor, PartialWritesTrickleThroughFlush)
{
    // Injected one-byte writes on the server force the flush loop
    // through its partial-progress path on every response byte;
    // predictions must still arrive bit-exact.
    startServer();
    armAndEnable("proto.write.short");

    Client c = connect();
    const SnapshotPtr snap = registry->lookup("default");
    Rng rng(4);
    std::vector<FeatureVector> rows;
    for (int i = 0; i < 32; ++i)
        rows.push_back(testutil::makeRow(rng));
    const ClientPrediction out = c.predictBatch("default", rows);
    ASSERT_TRUE(out.ok) << out.error;
    ASSERT_EQ(out.values.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(out.values[i],
                  snap->model.predict(testutil::rowRecord(rows[i])));
    c.quit();
}

TEST_F(ServeReactor, EmfileAcceptFailureIsRetried)
{
    // EMFILE on accept (fd exhaustion) must be survived: the loop
    // logs a retry, the next accept succeeds, and serving continues.
    startServer();
    armAndEnable("serve.accept.fail:once,errno=24");

    Client c = connect();
    EXPECT_TRUE(c.ping());
    EXPECT_GE(server->acceptRetries(), 1u);
    EXPECT_TRUE(server->running());
    c.quit();
}

TEST_F(ServeReactor, ConnabortedAcceptFailureIsRetried)
{
    // ECONNABORTED (peer gave up during the handshake) is routine;
    // the accept loop must shrug it off without pausing the server.
    startServer();
    armAndEnable("serve.accept.fail:once,errno=103");

    Client c = connect();
    EXPECT_TRUE(c.ping());
    EXPECT_GE(server->acceptRetries(), 1u);
    EXPECT_TRUE(server->running());
    c.quit();
}

TEST_F(ServeReactor, SlowLorisMidFrameStallIsClosed)
{
    // A connection that starts a frame and then stalls holds reactor
    // memory hostage; with an idle timeout armed the reactor must
    // close it. An honest client that is merely idle *between* frames
    // must never be touched.
    ServerOptions opts = defaultOpts();
    opts.idleTimeout = 0.05;
    startServer(opts);

    const int fd = rawConnect();
    // Two bytes of a length prefix, then silence: mid-frame stall.
    const char stub[2] = {0x00, 0x00};
    ASSERT_EQ(::send(fd, stub, sizeof(stub), MSG_NOSIGNAL), 2);
    EXPECT_TRUE(awaitEof(fd, 2000))
        << "stalled mid-frame connection was never closed";
    ::close(fd);

    // Idle-between-frames session on the same server: well past the
    // timeout with no bytes in flight, and it still serves.
    Client c = connect();
    EXPECT_TRUE(c.ping());
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_TRUE(c.ping());
    c.quit();
}

TEST_F(ServeReactor, OversizedFramePrefixClosesConnection)
{
    startServer();
    const int fd = rawConnect();
    const unsigned char header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(::send(fd, header, sizeof(header), MSG_NOSIGNAL), 4);
    EXPECT_TRUE(awaitEof(fd, 2000))
        << "oversized frame did not end the connection";
    ::close(fd);
    EXPECT_TRUE(server->running());
}

TEST_F(ServeReactor, QuitFlushesPipelinedResponsesThenCloses)
{
    // ping + quit written together: the reactor must flush both
    // responses before closing its end.
    startServer();
    const int fd = rawConnect();
    std::string wire;
    appendFrame(wire, makePingRequest());
    appendFrame(wire, "quit");
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));

    std::string response;
    ASSERT_TRUE(readFrame(fd, response));
    EXPECT_EQ(response, "ok pong");
    ASSERT_TRUE(readFrame(fd, response));
    EXPECT_EQ(response, "ok bye");
    EXPECT_TRUE(awaitEof(fd, 2000));
    ::close(fd);
}

TEST_F(ServeReactor, ShardsMultiplexConcurrentSessions)
{
    // Explicit shard count: connections land round-robin across
    // reactors and every session works, concurrently.
    ServerOptions opts = defaultOpts();
    opts.reactors = 3;
    startServer(opts);
    EXPECT_EQ(server->reactorCount(), 3u);

    std::atomic<std::uint64_t> okCount{0};
    std::vector<std::thread> sessions;
    for (int t = 0; t < 9; ++t) {
        sessions.emplace_back([&, t] {
            Client c("127.0.0.1", server->port());
            const SnapshotPtr snap = registry->lookup("default");
            Rng rng(100 + t);
            for (int i = 0; i < 5; ++i) {
                const FeatureVector row = testutil::makeRow(rng);
                const ClientPrediction out =
                    c.predict("default", row);
                ASSERT_TRUE(out.ok) << out.error;
                ASSERT_EQ(out.values[0],
                          snap->model.predict(
                              testutil::rowRecord(row)));
                okCount.fetch_add(1, std::memory_order_relaxed);
            }
            c.quit();
        });
    }
    for (auto &t : sessions)
        t.join();
    EXPECT_EQ(okCount.load(), 45u);
    EXPECT_GE(server->connectionsAccepted(), 9u);
}

} // namespace
} // namespace hwsw::serve
