// Property sweep of the SpMV execution model across every Table 4
// matrix (parameterized): sanity, determinism, accounting identities.
#include <gtest/gtest.h>

#include "spmv/exec.hpp"
#include "spmv/matgen.hpp"

namespace hwsw::spmv {
namespace {

class ExecAllMatricesTest
    : public ::testing::TestWithParam<MatrixInfo>
{
  protected:
    static SpmvResult
    run(const CsrMatrix &csr, std::int32_t br, std::int32_t bc)
    {
        const BcsrStructure s = BcsrStructure::fromCsr(csr, br, bc);
        SimOptions opts;
        opts.maxAccesses = 60 * 1000;
        return simulateSpmv(s, SpmvCacheConfig{}, opts);
    }
};

TEST_P(ExecAllMatricesTest, MflopsInPlausibleRange)
{
    const CsrMatrix csr = generateMatrix(GetParam(), 0.08, 3);
    for (std::int32_t b : {1, 2, 4}) {
        const SpmvResult r = run(csr, b, b);
        EXPECT_GT(r.mflops, 1.0) << GetParam().name << " " << b;
        EXPECT_LT(r.mflops, 800.0) << GetParam().name << " " << b;
        EXPECT_GT(r.nJPerFlop, 0.2) << GetParam().name;
        EXPECT_LT(r.nJPerFlop, 200.0) << GetParam().name;
    }
}

TEST_P(ExecAllMatricesTest, AccountingIdentities)
{
    const CsrMatrix csr = generateMatrix(GetParam(), 0.08, 3);
    const SpmvResult r = run(csr, 2, 2);
    // True flops fixed by the matrix; stored flops by the blocking.
    EXPECT_EQ(r.trueFlops, 2 * csr.nnz());
    const BcsrStructure s = BcsrStructure::fromCsr(csr, 2, 2);
    EXPECT_EQ(r.storedFlops, 2 * s.storedValues());
    // Memory words follow directly from misses and the line size.
    EXPECT_NEAR(r.memWords,
                (r.dMisses + r.iMisses) *
                    (SpmvCacheConfig{}.lineBytes / 8.0),
                1e-6 * r.memWords + 1e-9);
    // Throughput identity.
    EXPECT_NEAR(r.mflops,
                static_cast<double>(r.trueFlops) / r.seconds / 1e6,
                1e-6 * r.mflops);
}

TEST_P(ExecAllMatricesTest, DeterministicAcrossRuns)
{
    const CsrMatrix csr = generateMatrix(GetParam(), 0.05, 9);
    const SpmvResult a = run(csr, 3, 3);
    const SpmvResult b = run(csr, 3, 3);
    EXPECT_DOUBLE_EQ(a.mflops, b.mflops);
    EXPECT_DOUBLE_EQ(a.energyNJ, b.energyNJ);
}

TEST_P(ExecAllMatricesTest, FillRatioNeverBelowOne)
{
    const CsrMatrix csr = generateMatrix(GetParam(), 0.05, 4);
    for (std::int32_t br = 1; br <= 8; ++br) {
        for (std::int32_t bc = 1; bc <= 8; ++bc) {
            EXPECT_GE(fillRatio(csr, br, bc), 1.0 - 1e-12)
                << GetParam().name << " " << br << "x" << bc;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, ExecAllMatricesTest,
                         ::testing::ValuesIn(table4()),
                         [](const auto &info) {
                             return info.param.name;
                         });

} // namespace
} // namespace hwsw::spmv
