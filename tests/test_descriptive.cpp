// Unit tests for descriptive statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"

#include <vector>

#include "common/descriptive.hpp"
#include "common/rng.hpp"

namespace hwsw {
namespace {

TEST(Descriptive, MeanAndVariance)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(xs), 3.0);
    EXPECT_DOUBLE_EQ(variance(xs), 2.5);
    EXPECT_NEAR(stddev(xs), 1.5811, 1e-3);
}

TEST(Descriptive, VarianceOfSingletonIsZero)
{
    std::vector<double> xs = {4.2};
    EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Descriptive, MeanOfEmptyPanics)
{
    std::vector<double> xs;
    EXPECT_THROW(mean(xs), PanicError);
}

TEST(Descriptive, SkewnessSignReflectsTail)
{
    // Long right tail => positive skewness (Figure 3(a) shape).
    std::vector<double> right = {1, 1, 1, 2, 2, 3, 50};
    EXPECT_GT(skewness(right), 1.0);
    std::vector<double> left = {-50, 1, 1, 1, 2, 2, 3};
    EXPECT_LT(skewness(left), -1.0);
    std::vector<double> sym = {-2, -1, 0, 1, 2};
    EXPECT_NEAR(skewness(sym), 0.0, 1e-12);
}

TEST(Descriptive, SkewnessOfConstantIsZero)
{
    std::vector<double> xs = {3, 3, 3, 3};
    EXPECT_DOUBLE_EQ(skewness(xs), 0.0);
}

TEST(Descriptive, QuantileInterpolates)
{
    std::vector<double> xs = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Descriptive, QuantileUnsortedInput)
{
    std::vector<double> xs = {40, 10, 30, 20};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(Descriptive, QuantileRejectsBadFraction)
{
    std::vector<double> xs = {1, 2};
    EXPECT_THROW(quantile(xs, -0.1), FatalError);
    EXPECT_THROW(quantile(xs, 1.1), FatalError);
}

TEST(Descriptive, SummaryFields)
{
    std::vector<double> xs = {5, 1, 3, 2, 4};
    const Summary s = summarize(xs);
    EXPECT_EQ(s.n, 5u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.q1, 2.0);
    EXPECT_DOUBLE_EQ(s.q3, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Descriptive, PearsonPerfectCorrelation)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {2, 4, 6, 8};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    std::vector<double> neg = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Descriptive, PearsonZeroForConstant)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {5, 5, 5, 5};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Descriptive, SpearmanMonotoneNonlinear)
{
    // Monotone but non-linear: rank correlation is exactly 1.
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {1, 8, 27, 64, 125};
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
    EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Descriptive, RanksAverageTies)
{
    std::vector<double> xs = {10, 20, 20, 30};
    const std::vector<double> r = ranks(xs);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Descriptive, SpearmanInvariantToMonotoneTransform)
{
    Rng rng(5);
    std::vector<double> xs, ys, ys2;
    for (int i = 0; i < 200; ++i) {
        const double x = rng.nextDouble();
        xs.push_back(x);
        ys.push_back(x + 0.1 * rng.nextGaussian());
    }
    for (double y : ys)
        ys2.push_back(std::exp(3.0 * y)); // strictly monotone
    EXPECT_NEAR(spearman(xs, ys), spearman(xs, ys2), 1e-12);
}

} // namespace
} // namespace hwsw
