// Unit tests for cubic spline bases.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "stats/qr.hpp"
#include "stats/spline.hpp"

namespace hwsw::stats {
namespace {

TEST(TruncatedCubicSpline, TermCount)
{
    TruncatedCubicSpline s({0.25, 0.5, 0.75});
    EXPECT_EQ(s.numTerms(), 6u);
}

TEST(TruncatedCubicSpline, HingeTermsVanishBelowKnot)
{
    TruncatedCubicSpline s({0.5});
    std::vector<double> out(4);
    s.eval(0.4, out);
    EXPECT_DOUBLE_EQ(out[0], 0.4);
    EXPECT_NEAR(out[1], 0.16, 1e-12);
    EXPECT_NEAR(out[2], 0.064, 1e-12);
    EXPECT_DOUBLE_EQ(out[3], 0.0); // below the knot

    s.eval(0.7, out);
    EXPECT_NEAR(out[3], std::pow(0.2, 3), 1e-12); // (x-a)^3_+
}

TEST(TruncatedCubicSpline, PaperFormulaShape)
{
    // S(x) with three inflections a,b,c: coefficient on (x-b)^3_+
    // only affects x > b.
    TruncatedCubicSpline s({1.0, 2.0, 3.0});
    std::vector<double> lo(6), hi(6);
    s.eval(1.5, lo);
    s.eval(2.5, hi);
    EXPECT_DOUBLE_EQ(lo[4], 0.0);
    EXPECT_GT(hi[4], 0.0);
    EXPECT_DOUBLE_EQ(lo[5], 0.0);
    EXPECT_DOUBLE_EQ(hi[5], 0.0);
}

TEST(TruncatedCubicSpline, FromQuantilesSorted)
{
    Rng rng(3);
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i)
        xs.push_back(rng.nextDouble());
    const auto s = TruncatedCubicSpline::fromQuantiles(xs, 3);
    ASSERT_EQ(s.knots().size(), 3u);
    EXPECT_LT(s.knots()[0], s.knots()[1]);
    EXPECT_LT(s.knots()[1], s.knots()[2]);
    EXPECT_NEAR(s.knots()[1], 0.5, 0.08);
}

TEST(TruncatedCubicSpline, DegenerateSampleStillValid)
{
    std::vector<double> xs(50, 7.0); // constant sample
    const auto s = TruncatedCubicSpline::fromQuantiles(xs, 3);
    EXPECT_LT(s.knots()[0], s.knots()[1]);
    EXPECT_LT(s.knots()[1], s.knots()[2]);
}

TEST(TruncatedCubicSpline, RejectsUnsortedKnots)
{
    EXPECT_THROW(TruncatedCubicSpline({2.0, 1.0}), FatalError);
    EXPECT_THROW(TruncatedCubicSpline({}), FatalError);
}

TEST(TruncatedCubicSpline, CanFitNonMonotonicFunction)
{
    // A piecewise-cubic basis should fit a sine wave far better than
    // a line: this is the flexibility Section 3.1 asks of splines.
    Rng rng(5);
    const std::size_t n = 300;
    std::vector<double> xs(n);
    for (std::size_t i = 0; i < n; ++i)
        xs[i] = rng.nextDouble() * 6.28;
    TruncatedCubicSpline basis =
        TruncatedCubicSpline::fromQuantiles(xs, 3);

    Matrix X(n, 1 + basis.numTerms());
    Matrix Xlin(n, 2);
    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i) {
        X(i, 0) = 1.0;
        basis.eval(xs[i], X.row(i).subspan(1));
        Xlin(i, 0) = 1.0;
        Xlin(i, 1) = xs[i];
        z[i] = std::sin(xs[i]);
    }
    const double res_spline = lstsq(X, z).residualNorm;
    const double res_linear = lstsq(Xlin, z).residualNorm;
    EXPECT_LT(res_spline, 0.15 * res_linear);
}

TEST(RestrictedCubicSpline, TermCount)
{
    RestrictedCubicSpline s({0.1, 0.3, 0.5, 0.7, 0.9});
    EXPECT_EQ(s.numTerms(), 4u);
}

TEST(RestrictedCubicSpline, RejectsTooFewKnots)
{
    EXPECT_THROW(RestrictedCubicSpline({0.1, 0.2}), FatalError);
}

TEST(RestrictedCubicSpline, LinearBeyondBoundaryKnots)
{
    // Natural splines are linear outside the boundary knots: second
    // differences far above the last knot must vanish.
    RestrictedCubicSpline s({0.0, 1.0, 2.0});
    std::vector<double> f1(2), f2(2), f3(2);
    s.eval(10.0, f1);
    s.eval(11.0, f2);
    s.eval(12.0, f3);
    for (std::size_t t = 0; t < 2; ++t) {
        const double second_diff = f3[t] - 2.0 * f2[t] + f1[t];
        EXPECT_NEAR(second_diff, 0.0, 1e-8);
    }
}

TEST(RestrictedCubicSpline, ContinuousAtKnots)
{
    RestrictedCubicSpline s({0.0, 1.0, 2.0});
    std::vector<double> below(2), above(2);
    s.eval(1.0 - 1e-9, below);
    s.eval(1.0 + 1e-9, above);
    for (std::size_t t = 0; t < 2; ++t)
        EXPECT_NEAR(below[t], above[t], 1e-6);
}

} // namespace
} // namespace hwsw::stats
