// Tests for the persistent worker pool and wait-group primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/pool.hpp"

namespace hwsw {
namespace {

TEST(ThreadPool, RunsSubmittedTasksToCompletion)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);

    std::atomic<int> ran{0};
    WaitGroup wg;
    wg.add(64);
    for (int i = 0; i < 64; ++i) {
        pool.submit([&] {
            ran.fetch_add(1);
            wg.done();
        });
    }
    wg.wait();
    EXPECT_EQ(ran.load(), 64);
    EXPECT_EQ(wg.pending(), 0u);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ReusedAcrossManySubmitRounds)
{
    // The whole point of the pool: one thread set serves many
    // generations. Run many rounds through the same workers and
    // check every round completes fully.
    ThreadPool pool(3);
    std::atomic<std::uint64_t> total{0};
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> round_sum{0};
        WaitGroup wg;
        wg.add(10);
        for (int i = 1; i <= 10; ++i) {
            pool.submit([&, i] {
                round_sum.fetch_add(i);
                wg.done();
            });
        }
        wg.wait();
        EXPECT_EQ(round_sum.load(), 55);
        total.fetch_add(static_cast<std::uint64_t>(round_sum.load()));
    }
    EXPECT_EQ(total.load(), 55u * 50u);
    EXPECT_EQ(pool.tasksExecuted(), 500u);
}

TEST(ThreadPool, ParallelForVisitsEachIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 997; // not a multiple of the pool size
    std::vector<std::atomic<int>> visits(n);
    pool.parallelFor(n, [&](std::size_t i) {
        visits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHandlesDegenerateSizes)
{
    ThreadPool pool(2);
    int zero_calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++zero_calls; });
    EXPECT_EQ(zero_calls, 0);

    // n == 1 runs inline on the caller.
    std::atomic<int> one_calls{0};
    const auto caller = std::this_thread::get_id();
    std::thread::id executed_on;
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        executed_on = std::this_thread::get_id();
        one_calls.fetch_add(1);
    });
    EXPECT_EQ(one_calls.load(), 1);
    EXPECT_EQ(executed_on, caller);

    // More workers than indices must not duplicate work.
    std::atomic<int> small_calls{0};
    ThreadPool wide(8);
    wide.parallelFor(3, [&](std::size_t) { small_calls.fetch_add(1); });
    EXPECT_EQ(small_calls.load(), 3);
}

TEST(ThreadPool, DestructionDrainsPendingWork)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        // One slow task at the head keeps dozens pending in the
        // queue when the destructor starts; graceful shutdown must
        // still run them all.
        pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            ran.fetch_add(1);
        });
        for (int i = 0; i < 40; ++i)
            pool.submit([&] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 41);
}

TEST(ThreadPool, NoDeadlockUnderLoad)
{
    // Smoke test: many producers feeding one pool concurrently with
    // mixed task sizes; finishes (rather than hangs) and loses
    // nothing.
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    WaitGroup wg;
    constexpr int per_producer = 200;
    std::vector<std::thread> producers;
    wg.add(4 * per_producer);
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < per_producer; ++i) {
                pool.submit([&, i, p] {
                    if ((i + p) % 16 == 0)
                        std::this_thread::yield();
                    ran.fetch_add(1);
                    wg.done();
                });
            }
        });
    }
    for (std::thread &t : producers)
        t.join();
    wg.wait();
    EXPECT_EQ(ran.load(), 4 * per_producer);
}

TEST(ThreadPool, WaitGroupSemantics)
{
    WaitGroup wg;
    EXPECT_EQ(wg.pending(), 0u);
    wg.wait(); // zero count: returns immediately

    wg.add(2);
    EXPECT_EQ(wg.pending(), 2u);

    std::atomic<bool> released{false};
    std::thread waiter([&] {
        wg.wait();
        released.store(true);
    });
    wg.done();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(released.load()); // still one outstanding
    wg.done();
    waiter.join();
    EXPECT_TRUE(released.load());

    // Unbalanced done() is a programming error.
    EXPECT_THROW(wg.done(), PanicError);
}

TEST(ThreadPool, WaitGroupReusableAcrossRounds)
{
    WaitGroup wg;
    ThreadPool pool(2);
    for (int round = 0; round < 20; ++round) {
        wg.add(8);
        for (int i = 0; i < 8; ++i)
            pool.submit([&] { wg.done(); });
        wg.wait();
        EXPECT_EQ(wg.pending(), 0u);
    }
}

} // namespace
} // namespace hwsw
