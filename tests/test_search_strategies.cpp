// Registered-stage search pipeline: registry hygiene (names, parse,
// validation, duplicate registration) and the per-strategy
// conformance contract every registered searcher must honor —
// determinism across thread counts and memo-cache settings,
// checkpoint/kill/resume bit-identity, strategy-stamped checkpoints
// that refuse a mismatched resume, and a distributed single-island
// run matching the in-process reference. Part of the tier15_search
// aggregate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>

#include "common/assert.hpp"
#include "core/checkpoint.hpp"
#include "core/genetic.hpp"
#include "core/island.hpp"
#include "core/search/registry.hpp"
#include "serve/island.hpp"
#include "serve/server.hpp"

namespace hwsw::core {
namespace {

/** Two-app dataset a tiny search separates in a few generations. */
Dataset
searchData(std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"a1", "a2"}) {
        for (int i = 0; i < 60; ++i) {
            ProfileRecord r;
            r.app = app;
            r.vars[1] = (app[1] == '1' ? 0.05 : 0.15) +
                rng.nextUniform(0.0, 0.1);
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[kNumSw] = 1 << rng.nextInt(4);
            r.perf = 0.5 + 4.0 * r.vars[1] + 2.0 * r.vars[6] +
                3.0 / r.vars[kNumSw];
            ds.add(r);
        }
    }
    return ds;
}

GaOptions
searchOpts(const std::string &search)
{
    GaOptions o;
    o.populationSize = 10;
    o.generations = 5;
    o.numThreads = 1;
    o.seed = 5;
    o.search = search;
    return o;
}

/** Bit-exact equality of everything deterministic in a GaResult. */
void
expectSameResult(const GaResult &a, const GaResult &b,
                 const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.best.spec, b.best.spec);
    EXPECT_EQ(a.best.fitness, b.best.fitness);
    EXPECT_EQ(a.best.sumMedianError, b.best.sumMedianError);

    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        SCOPED_TRACE("generation " + std::to_string(g));
        EXPECT_EQ(a.history[g].generation, b.history[g].generation);
        EXPECT_EQ(a.history[g].bestFitness, b.history[g].bestFitness);
        EXPECT_EQ(a.history[g].meanFitness, b.history[g].meanFitness);
        EXPECT_EQ(a.history[g].bestSumMedianError,
                  b.history[g].bestSumMedianError);
    }

    ASSERT_EQ(a.population.size(), b.population.size());
    for (std::size_t i = 0; i < a.population.size(); ++i) {
        SCOPED_TRACE("rank " + std::to_string(i));
        EXPECT_EQ(a.population[i].spec, b.population[i].spec);
        EXPECT_EQ(a.population[i].fitness, b.population[i].fitness);
    }
}

TEST(SearchRegistry, BuiltinsAreRegistered)
{
    const auto &reg = search::StageRegistry::instance();
    const auto strategies = reg.strategyNames();
    for (const char *name : {"anneal", "genetic", "halving"})
        EXPECT_NE(std::find(strategies.begin(), strategies.end(),
                            name),
                  strategies.end())
            << name;

    const auto costs = reg.costNames();
    for (const char *name : {"fitness", "sum-error"})
        EXPECT_NE(std::find(costs.begin(), costs.end(), name),
                  costs.end())
            << name;

    const auto stages = reg.stageNames();
    for (const char *name :
         {"populate.seeded", "score.kfold", "select.cost",
          "breed.genetic", "breed.anneal", "breed.halving",
          "migrate.ring"})
        EXPECT_NE(std::find(stages.begin(), stages.end(), name),
                  stages.end())
            << name;

    // Every registered strategy wires five resolvable slots of the
    // right kind and constructs from its bare name.
    for (const std::string &name : strategies) {
        SCOPED_TRACE(name);
        const auto *d = reg.findStrategy(name);
        ASSERT_NE(d, nullptr);
        const std::pair<const std::string &, search::StageKind>
            slots[] = {
                {d->populate, search::StageKind::Populate},
                {d->score, search::StageKind::Score},
                {d->select, search::StageKind::Select},
                {d->breed, search::StageKind::Breed},
                {d->migrate, search::StageKind::Migrate},
            };
        for (const auto &[slot, kind] : slots) {
            const auto *s = reg.findStage(slot);
            ASSERT_NE(s, nullptr) << slot;
            EXPECT_EQ(s->kind, kind) << slot;
        }
        std::string error;
        EXPECT_TRUE(search::validateStrategySpec(name, &error))
            << error;
    }
}

TEST(SearchRegistry, ParseSpecGrammar)
{
    std::string error;
    auto cfg = search::parseStrategySpec("genetic", &error);
    ASSERT_TRUE(cfg.has_value()) << error;
    EXPECT_EQ(cfg->name, "genetic");
    EXPECT_TRUE(cfg->options.empty());

    cfg = search::parseStrategySpec("anneal:t0=0.1,decay=0.9",
                                    &error);
    ASSERT_TRUE(cfg.has_value()) << error;
    EXPECT_EQ(cfg->name, "anneal");
    ASSERT_EQ(cfg->options.size(), 2u);
    EXPECT_EQ(cfg->options[0].first, "t0");
    EXPECT_EQ(cfg->options[0].second, "0.1");
    EXPECT_EQ(*cfg->find("decay"), "0.9");
    EXPECT_EQ(cfg->find("missing"), nullptr);
    EXPECT_EQ(cfg->numberOr("t0", 7.0), 0.1);
    EXPECT_EQ(cfg->numberOr("absent", 7.0), 7.0);

    for (const char *bad : {"", ":t0=1", "anneal:", "anneal:t0",
                            "anneal:t0=", "anneal:=1",
                            "anneal :t0=1", "anneal\t"})
        EXPECT_FALSE(search::parseStrategySpec(bad, &error).has_value())
            << "'" << bad << "' parsed";
}

TEST(SearchRegistry, ValidateReportsRegisteredAlternatives)
{
    std::string error;
    EXPECT_FALSE(search::validateStrategySpec("bogus", &error));
    EXPECT_NE(error.find("unknown strategy 'bogus'"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("genetic"), std::string::npos) << error;

    EXPECT_FALSE(
        search::validateStrategySpec("genetic:cost=bogus", &error));
    EXPECT_NE(error.find("unknown cost"), std::string::npos) << error;
    EXPECT_NE(error.find("fitness"), std::string::npos) << error;

    EXPECT_FALSE(
        search::validateStrategySpec("genetic:t0=0.1", &error));
    EXPECT_NE(error.find("does not accept option 't0'"),
              std::string::npos)
        << error;
}

TEST(SearchRegistry, ValidateRejectsBadOptionValues)
{
    std::string error;
    EXPECT_FALSE(
        search::validateStrategySpec("anneal:t0=warm", &error));
    // Range checks happen at validation (stage dry-construction),
    // not later inside engine setup.
    EXPECT_FALSE(search::validateStrategySpec("anneal:t0=0", &error));
    EXPECT_FALSE(
        search::validateStrategySpec("anneal:decay=1.5", &error));
    EXPECT_FALSE(
        search::validateStrategySpec("halving:keep=2", &error));
    EXPECT_NE(error.find("keep"), std::string::npos) << error;

    EXPECT_TRUE(search::validateStrategySpec(
        "anneal:t0=0.1,decay=0.5,cost=sum-error", &error))
        << error;
    EXPECT_TRUE(search::validateStrategySpec("halving:keep=0.25",
                                             &error))
        << error;
}

TEST(SearchRegistry, DuplicateRegistrationIsFatal)
{
    auto &reg = search::StageRegistry::instance();
    search::StageDescriptor stage;
    stage.name = "score.kfold"; // already registered
    stage.kind = search::StageKind::Score;
    stage.make = [](const search::StrategyConfig &) {
        return std::unique_ptr<search::SearchStage>();
    };
    EXPECT_THROW(reg.registerStage(std::move(stage)), FatalError);

    search::CostDescriptor cost;
    cost.name = "fitness";
    cost.fn = [](const ScoredSpec &s) { return s.fitness; };
    EXPECT_THROW(reg.registerCost(std::move(cost)), FatalError);

    search::StrategyDescriptor strat;
    strat.name = "genetic";
    EXPECT_THROW(reg.registerStrategy(std::move(strat)), FatalError);
}

TEST(SearchRegistry, EngineRejectsBadSearchSpec)
{
    const Dataset data = searchData(11);
    GaOptions opts = searchOpts("definitely-not-registered");
    EXPECT_THROW(GeneticSearch(data, opts), FatalError);
    opts.search = "genetic:cost=bogus";
    EXPECT_THROW(GeneticSearch(data, opts), FatalError);
}

TEST(SearchRegistry, LegacyCheckpointWithoutStrategyLoadsAsGenetic)
{
    SearchCheckpoint cp;
    cp.strategy = "anneal";
    cp.nextGeneration = 2;
    cp.rng = Rng(3).state();
    cp.population.push_back(ModelSpec{});

    std::string text = saveCheckpointToString(cp);
    EXPECT_NE(text.find("strategy anneal\n"), std::string::npos);
    EXPECT_EQ(loadCheckpointFromString(text).strategy, "anneal");

    // A pre-registry file has no strategy line at all; only the
    // genetic searcher existed then, so that is what it loads as.
    const std::size_t at = text.find("strategy anneal\n");
    text.erase(at, std::string("strategy anneal\n").size());
    const SearchCheckpoint legacy = loadCheckpointFromString(text);
    EXPECT_EQ(legacy.strategy, "genetic");
    EXPECT_EQ(legacy.nextGeneration, 2u);
}

/** Conformance contract, per registered strategy spec. */
class SearchStrategyConformance
    : public ::testing::TestWithParam<const char *>
{
  protected:
    static std::string path()
    {
        return testing::TempDir() + "hwsw_test_strategy_" +
            search::parseStrategySpec(GetParam(), nullptr)->name +
            ".ckpt";
    }

    void TearDown() override { std::remove(path().c_str()); }
};

TEST_P(SearchStrategyConformance, DeterministicAcrossThreadsAndCache)
{
    const Dataset data = searchData(11);
    const GaOptions base = searchOpts(GetParam());

    GeneticSearch ref_engine(data, base);
    const GaResult reference = ref_engine.run();
    ASSERT_EQ(reference.history.size(), base.generations);
    EXPECT_TRUE(std::isfinite(reference.best.fitness));

    for (const unsigned threads : {1u, 2u, 8u}) {
        for (const bool memoize : {true, false}) {
            GaOptions opts = base;
            opts.numThreads = threads;
            opts.memoizeFitness = memoize;
            GeneticSearch engine(data, opts);
            expectSameResult(reference, engine.run(),
                             std::to_string(threads) + " threads, " +
                                 (memoize ? "cache" : "no cache"));
        }
    }
}

TEST_P(SearchStrategyConformance, CheckpointResumeBitIdentity)
{
    const Dataset data = searchData(11);
    const GaOptions opts = searchOpts(GetParam());

    GeneticSearch full(data, opts);
    const GaResult a = full.run();

    // A "crashed" run: killed after generation 1; the checkpoint on
    // disk is what the crash left behind.
    GaOptions crashed = opts;
    crashed.generations = 3;
    crashed.checkpointPath = path();
    GeneticSearch partial(data, crashed);
    (void)partial.run();

    const auto cp = loadCheckpointFromFile(path());
    ASSERT_TRUE(cp.has_value());
    EXPECT_EQ(cp->strategy,
              search::parseStrategySpec(GetParam(), nullptr)->name);
    EXPECT_EQ(cp->nextGeneration, 2u);
    ASSERT_EQ(cp->population.size(), opts.populationSize);

    GeneticSearch resumed(data, opts);
    expectSameResult(a, resumed.resume(*cp), "resumed vs full");
}

TEST_P(SearchStrategyConformance, ResumeRefusesStrategyMismatch)
{
    const Dataset data = searchData(11);
    const GaOptions opts = searchOpts(GetParam());
    const std::string mine =
        search::parseStrategySpec(GetParam(), nullptr)->name;

    GaOptions writer_opts = opts;
    writer_opts.checkpointPath = path();
    GeneticSearch writer(data, writer_opts);
    (void)writer.run();

    auto cp = loadCheckpointFromFile(path());
    ASSERT_TRUE(cp.has_value());
    EXPECT_EQ(cp->strategy, mine);

    // A population bred by one operator schedule must not silently
    // continue under another.
    GaOptions other_opts = opts;
    other_opts.search = mine == "genetic" ? "anneal" : "genetic";
    GeneticSearch other(data, other_opts);
    EXPECT_THROW(other.resume(*cp), FatalError);

    // The same stamp guards the island path.
    IslandOptions iopts;
    iopts.ga = other_opts;
    iopts.islands = 1;
    iopts.checkpointDir = testing::TempDir();
    const std::string island_path = islandCheckpointPath(iopts, 0);
    ASSERT_TRUE(saveCheckpointToFile(*cp, island_path));
    IslandEvolver evolver(data, iopts, 0);
    EXPECT_THROW(evolver.resumeFromCheckpoint(), FatalError);
    std::remove(island_path.c_str());
}

TEST_P(SearchStrategyConformance, SingleIslandMatchesPlainRun)
{
    const Dataset data = searchData(11);
    IslandOptions iopts;
    iopts.ga = searchOpts(GetParam());
    iopts.islands = 1;

    GeneticSearch plain(data, iopts.ga);
    const GaResult reference = plain.run();
    expectSameResult(reference, runIslandModel(data, iopts),
                     "1 island vs plain run");
}

TEST_P(SearchStrategyConformance, DistributedRunMatchesReference)
{
    const Dataset data = searchData(11);
    IslandOptions iopts;
    iopts.ga = searchOpts(GetParam());
    iopts.ga.generations = 4;
    iopts.islands = 2;
    iopts.migrationInterval = 2;
    iopts.migrants = 2;
    const GaResult reference = runIslandModel(data, iopts);

    auto registry = std::make_shared<serve::ModelRegistry>();
    serve::IslandCoordinator coordinator(iopts);
    serve::Server server(registry, {}, nullptr, &coordinator);
    server.start();

    std::vector<std::thread> workers;
    for (std::size_t island = 0; island < iopts.islands; ++island) {
        workers.emplace_back([&data, &iopts, island, &server] {
            serve::IslandWorkerOptions w;
            w.port = server.port();
            w.island = island;
            w.pollSeconds = 0.005;
            // The worker takes the strategy from the handshake;
            // a mismatch would be a config-mismatch FatalError.
            serve::runIslandWorker(data, iopts, w);
        });
    }
    for (std::thread &t : workers)
        t.join();

    ASSERT_TRUE(coordinator.waitForReports(30.0));
    const GaResult distributed = coordinator.result();
    server.stop();
    expectSameResult(reference, distributed,
                     "distributed vs in-process reference");
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SearchStrategyConformance,
    ::testing::Values("genetic", "anneal:t0=0.05,decay=0.8",
                      "halving:keep=0.5"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return search::parseStrategySpec(info.param, nullptr)->name;
    });

} // namespace
} // namespace hwsw::core
