// Determinism suite: the genetic search must produce bit-identical
// results for a fixed seed regardless of worker count or memoization
// state. (Wall-clock fields are excluded -- they are the only
// non-deterministic part of a GaResult.)
#include <gtest/gtest.h>

#include <cmath>

#include "core/genetic.hpp"

namespace hwsw::core {
namespace {

Dataset
detData(std::size_t per_app, std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"alpha", "beta", "gamma"}) {
        const double base = 1.0 + 0.5 * (app[0] - 'a');
        for (std::size_t i = 0; i < per_app; ++i) {
            ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[7] = rng.nextUniform(10, 1000);
            r.vars[kNumSw] = 1 << rng.nextInt(4);
            r.vars[kNumSw + 4] = 16 << rng.nextInt(4);
            r.perf = base + 2.0 * r.vars[6] + 3.0 / r.vars[kNumSw] +
                0.3 * std::sqrt(r.vars[7]) * 16.0 /
                    r.vars[kNumSw + 4];
            ds.add(r);
        }
    }
    return ds;
}

GaOptions
baseOpts()
{
    GaOptions o;
    o.populationSize = 16;
    o.generations = 6;
    o.numThreads = 1;
    o.seed = 1234;
    return o;
}

/** Bit-exact equality of everything deterministic in a GaResult. */
void
expectSameResult(const GaResult &a, const GaResult &b,
                 const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.best.spec, b.best.spec);
    EXPECT_EQ(a.best.fitness, b.best.fitness);
    EXPECT_EQ(a.best.sumMedianError, b.best.sumMedianError);

    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t g = 0; g < a.history.size(); ++g) {
        SCOPED_TRACE("generation " + std::to_string(g));
        EXPECT_EQ(a.history[g].generation, b.history[g].generation);
        EXPECT_EQ(a.history[g].bestFitness, b.history[g].bestFitness);
        EXPECT_EQ(a.history[g].meanFitness, b.history[g].meanFitness);
        EXPECT_EQ(a.history[g].bestSumMedianError,
                  b.history[g].bestSumMedianError);
    }

    ASSERT_EQ(a.population.size(), b.population.size());
    for (std::size_t i = 0; i < a.population.size(); ++i) {
        SCOPED_TRACE("rank " + std::to_string(i));
        EXPECT_EQ(a.population[i].spec, b.population[i].spec);
        EXPECT_EQ(a.population[i].fitness, b.population[i].fitness);
    }
}

GaResult
runWith(const Dataset &data, unsigned threads, bool memoize)
{
    GaOptions opts = baseOpts();
    opts.numThreads = threads;
    opts.memoizeFitness = memoize;
    GeneticSearch search(data, opts);
    return search.run();
}

TEST(GeneticDeterminism, IdenticalAcrossThreadCounts)
{
    const Dataset data = detData(50, 11);
    const GaResult serial = runWith(data, 1, true);
    for (unsigned threads : {2u, 8u}) {
        const GaResult parallel = runWith(data, threads, true);
        expectSameResult(serial, parallel,
                         std::to_string(threads) + " threads");
    }
}

TEST(GeneticDeterminism, IdenticalWithCacheDisabled)
{
    const Dataset data = detData(50, 12);
    const GaResult memo = runWith(data, 1, true);
    const GaResult cold = runWith(data, 1, false);
    expectSameResult(memo, cold, "memoized vs cold, serial");

    // Misses must be a strict subset of the uncached evaluation
    // count whenever any generation carried elites forward.
    EXPECT_LT(memo.metrics.cacheMisses, cold.metrics.cacheMisses);
    EXPECT_EQ(cold.metrics.cacheHits, 0u);
}

TEST(GeneticDeterminism, ThreadsAndCacheComposeOrthogonally)
{
    // The full 3x2 grid of {1,2,8} threads x cache {on,off} collapses
    // to one result.
    const Dataset data = detData(40, 13);
    const GaResult reference = runWith(data, 1, false);
    for (unsigned threads : {1u, 2u, 8u}) {
        for (bool memoize : {true, false}) {
            const GaResult r = runWith(data, threads, memoize);
            expectSameResult(reference, r,
                             std::to_string(threads) + " threads, memo " +
                                 (memoize ? "on" : "off"));
        }
    }
}

TEST(GeneticDeterminism, WarmStartDeterministicAcrossThreads)
{
    // Model updates (run with seeds) go down a different population
    // initialization path; it must be thread-count-invariant too.
    const Dataset data = detData(40, 14);
    const GaResult first = runWith(data, 1, true);
    std::vector<ModelSpec> seeds = {first.best.spec};

    GaOptions opts = baseOpts();
    opts.generations = 3;
    GaResult warm_serial, warm_parallel;
    {
        GeneticSearch search(data, opts);
        warm_serial = search.run(seeds);
    }
    {
        opts.numThreads = 8;
        GeneticSearch search(data, opts);
        warm_parallel = search.run(seeds);
    }
    expectSameResult(warm_serial, warm_parallel, "warm start, 8 threads");
}

TEST(GeneticDeterminism, RepeatedRunsOnOneSearchShareTheCache)
{
    // A second run() on the same object starts with a warm cache:
    // same result, far fewer misses.
    const Dataset data = detData(40, 15);
    GeneticSearch search(data, baseOpts());
    const GaResult first = search.run();
    const GaResult second = search.run();
    expectSameResult(first, second, "second run, warm cache");
    EXPECT_LT(second.metrics.cacheMisses, first.metrics.cacheMisses);
    EXPECT_GT(second.metrics.cacheHits, first.metrics.cacheHits);
}

TEST(GeneticDeterminism, MetricsCountsAreDeterministic)
{
    const Dataset data = detData(40, 16);
    const GaResult a = runWith(data, 1, true);
    const GaResult b = runWith(data, 8, true);
    EXPECT_EQ(a.metrics.evaluations, b.metrics.evaluations);
    EXPECT_EQ(a.metrics.cacheHits, b.metrics.cacheHits);
    EXPECT_EQ(a.metrics.cacheMisses, b.metrics.cacheMisses);
    EXPECT_EQ(a.metrics.modelFits, b.metrics.modelFits);
    EXPECT_EQ(a.metrics.evaluations,
              static_cast<std::uint64_t>(baseOpts().populationSize *
                                         baseOpts().generations));
}

} // namespace
} // namespace hwsw::core
