// Tests for synthetic benchmark generation (Section 4.5 extension).
#include <gtest/gtest.h>

#include <set>

#include "common/assert.hpp"
#include "profiler/profiler.hpp"
#include "workload/generator.hpp"
#include "workload/synthetic.hpp"

namespace hwsw::wl {
namespace {

TEST(Synthetic, DeterministicInSeed)
{
    const AppSpec a = makeSyntheticApp(5);
    const AppSpec b = makeSyntheticApp(5);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (std::size_t p = 0; p < a.phases.size(); ++p) {
        EXPECT_EQ(a.phases[p].meanBasicBlock,
                  b.phases[p].meanBasicBlock);
        EXPECT_EQ(a.phases[p].streams[0].workingSetBytes,
                  b.phases[p].streams[0].workingSetBytes);
    }
    const AppSpec c = makeSyntheticApp(6);
    EXPECT_NE(a.phases[0].meanBasicBlock, c.phases[0].meanBasicBlock);
}

TEST(Synthetic, GeneratesRunnableStreams)
{
    for (std::uint64_t seed : {1, 17, 99}) {
        const AppSpec app = makeSyntheticApp(seed);
        StreamGenerator gen(app);
        const auto ops = gen.generate(4096);
        const auto p = prof::profileShard(ops, app.name, 0);
        EXPECT_GT(p.avgBasicBlock, 1.0);
        EXPECT_GT(p.memFrac, 0.05);
        EXPECT_LT(p.memFrac, 0.6);
    }
}

TEST(Synthetic, PhasesRespectOptionBounds)
{
    SyntheticOptions opts;
    opts.numPhases = 4;
    opts.minFootprint = 32 << 10;
    opts.maxFootprint = 1 << 20;
    const AppSpec app = makeSyntheticApp(3, opts);
    EXPECT_EQ(app.phases.size(), 4u);
    for (const Phase &p : app.phases) {
        for (const MemStreamSpec &s : p.streams) {
            EXPECT_GE(s.workingSetBytes, opts.minFootprint / 2);
            EXPECT_LE(s.workingSetBytes, 2 * opts.maxFootprint);
        }
        EXPECT_GE(p.branchPredictability, 0.7);
        EXPECT_LE(p.branchPredictability, 1.0);
    }
}

TEST(Synthetic, SuiteHasDistinctNames)
{
    const auto suite = makeSyntheticSuite(8, 100);
    ASSERT_EQ(suite.size(), 8u);
    std::set<std::string> names;
    for (const auto &app : suite)
        names.insert(app.name);
    EXPECT_EQ(names.size(), 8u);
}

TEST(Synthetic, CoversFpBehavior)
{
    // With default options a batch must include FP-flavored phases,
    // the corner real integer suites leave empty.
    int fp_apps = 0;
    for (const auto &app : makeSyntheticSuite(12, 50)) {
        StreamGenerator gen(app);
        const auto p = prof::profileShard(gen.generate(8192),
                                          app.name, 0);
        if (p.fpAluFrac + p.fpMulFrac > 0.2)
            ++fp_apps;
    }
    EXPECT_GE(fp_apps, 3);
}

TEST(Synthetic, RejectsDegenerateOptions)
{
    SyntheticOptions bad;
    bad.numPhases = 0;
    EXPECT_THROW(makeSyntheticApp(1, bad), FatalError);
    bad = SyntheticOptions{};
    bad.minFootprint = 1 << 20;
    bad.maxFootprint = 1 << 10;
    EXPECT_THROW(makeSyntheticApp(1, bad), FatalError);
}

} // namespace
} // namespace hwsw::wl
