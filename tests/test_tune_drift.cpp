// Drift-detector edge cases for the closed tuning loop: short
// windows, a zero-variance envelope, single outliers vs sustained
// drift under hysteresis, the Drifted latch, and bit-identical state
// round trips (the property journal-replayed resume depends on).
// Part of the tier15_tune aggregate.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "tune/drift.hpp"

namespace hwsw::tune {
namespace {

DriftOptions
baseOptions()
{
    DriftOptions o;
    o.window = 8;
    o.minSamples = 4;
    o.bandFactor = 2.0;
    o.hysteresis = 3;
    o.envelopeFloor = 0.02;
    return o;
}

TEST(TuneDrift, SettlesUntilMinSamples)
{
    DriftDetector d(baseOptions());
    d.rebaseline(0.1);
    EXPECT_EQ(d.state(), DriftState::Settling);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(d.observe(0.05), DriftState::Settling);
    // The fourth sample reaches minSamples: the test runs.
    EXPECT_EQ(d.observe(0.05), DriftState::Steady);
}

TEST(TuneDrift, WindowShorterThanMinSamplesStillLeavesSettling)
{
    DriftOptions o = baseOptions();
    o.window = 2;
    o.minSamples = 8; // deliberately impossible to reach
    DriftDetector d(o);
    d.rebaseline(0.1);
    // The effective requirement clamps to the window length: once
    // the window fills, a verdict must come.
    EXPECT_EQ(d.observe(0.05), DriftState::Settling);
    EXPECT_EQ(d.observe(0.05), DriftState::Steady);
    EXPECT_EQ(d.windowSize(), 2u);
}

TEST(TuneDrift, ZeroVarianceEnvelopeUsesFloor)
{
    DriftDetector d(baseOptions());
    d.rebaseline(0.0); // a model that fit validation exactly
    EXPECT_DOUBLE_EQ(d.threshold(), 2.0 * 0.02);

    // Tiny residuals below the floored threshold must not fire.
    for (int i = 0; i < 20; ++i)
        EXPECT_NE(d.observe(0.01), DriftState::Drifted);
    EXPECT_EQ(d.state(), DriftState::Steady);

    // Residuals above the floored threshold still do.
    DriftState last = DriftState::Steady;
    for (int i = 0; i < 20; ++i)
        last = d.observe(0.5);
    EXPECT_EQ(last, DriftState::Drifted);
}

TEST(TuneDrift, SingleOutlierDoesNotFire)
{
    DriftDetector d(baseOptions());
    d.rebaseline(0.1); // threshold 0.2
    for (int i = 0; i < 8; ++i)
        d.observe(0.08);
    ASSERT_EQ(d.state(), DriftState::Steady);

    // One enormous outlier cannot move the window median.
    EXPECT_EQ(d.observe(50.0), DriftState::Steady);
    EXPECT_EQ(d.streak(), 0u);
}

TEST(TuneDrift, SustainedDriftFiresAfterHysteresis)
{
    DriftDetector d(baseOptions());
    d.rebaseline(0.1);
    for (int i = 0; i < 8; ++i)
        d.observe(0.08);
    ASSERT_EQ(d.state(), DriftState::Steady);

    // Flood the window so its median crosses the threshold, then
    // count consecutive out-of-band verdicts: Suspect for
    // hysteresis-1 observations, Drifted on the hysteresis-th.
    std::vector<DriftState> verdicts;
    for (int i = 0; i < 8; ++i)
        verdicts.push_back(d.observe(1.0));
    int suspects = 0;
    std::size_t fired_at = 0;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (verdicts[i] == DriftState::Suspect)
            ++suspects;
        if (verdicts[i] == DriftState::Drifted) {
            fired_at = i;
            break;
        }
    }
    EXPECT_EQ(suspects, 2); // hysteresis - 1
    EXPECT_EQ(verdicts[fired_at], DriftState::Drifted);
}

TEST(TuneDrift, ShortBurstRecoversAndResetsStreak)
{
    DriftOptions o = baseOptions();
    o.window = 3;
    o.minSamples = 3;
    DriftDetector d(o);
    d.rebaseline(0.1);
    for (int i = 0; i < 3; ++i)
        d.observe(0.08);
    ASSERT_EQ(d.state(), DriftState::Steady);

    // hysteresis-1 out-of-band observations, then recovery: with a
    // window this small the median drops back in band, the streak
    // resets, and the detector never fires.
    EXPECT_EQ(d.observe(1.0), DriftState::Steady); // median still ok
    EXPECT_EQ(d.observe(1.0), DriftState::Suspect);
    EXPECT_EQ(d.streak(), 1u);
    for (int i = 0; i < 4; ++i)
        d.observe(0.05);
    EXPECT_EQ(d.state(), DriftState::Steady);
    EXPECT_EQ(d.streak(), 0u);
}

TEST(TuneDrift, DriftedLatchesUntilRebaseline)
{
    DriftOptions o = baseOptions();
    o.hysteresis = 1;
    DriftDetector d(o);
    d.rebaseline(0.1);
    DriftState last = DriftState::Settling;
    for (int i = 0; i < 8; ++i)
        last = d.observe(1.0);
    ASSERT_EQ(last, DriftState::Drifted);

    // In-band residuals do not clear the latch...
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(d.observe(0.01), DriftState::Drifted);

    // ...only a rebaseline does.
    d.rebaseline(0.3);
    EXPECT_EQ(d.state(), DriftState::Settling);
    EXPECT_EQ(d.windowSize(), 0u);
    EXPECT_DOUBLE_EQ(d.envelope(), 0.3);
}

TEST(TuneDrift, StateRoundTripsBitIdentically)
{
    DriftDetector d(baseOptions());
    d.rebaseline(1.0 / 3.0);
    // An awkward residual sequence, including values that do not
    // round-trip through short decimal forms.
    for (int i = 0; i < 11; ++i)
        d.observe(0.1 + 1.0 / (7.0 + i));
    // Push the window median out of band for two observations: the
    // saved state carries a mid-hysteresis streak (Suspect).
    for (int i = 0; i < 5; ++i)
        d.observe(2.0 + 1.0 / (3.0 + i));
    ASSERT_EQ(d.state(), DriftState::Suspect);
    ASSERT_GT(d.streak(), 0u);

    const std::string saved = d.saveStateToString();
    DriftDetector restored(baseOptions());
    restored.restoreStateFromString(saved);

    EXPECT_EQ(restored.state(), d.state());
    EXPECT_EQ(restored.streak(), d.streak());
    EXPECT_EQ(restored.windowSize(), d.windowSize());
    EXPECT_EQ(restored.envelope(), d.envelope());
    EXPECT_EQ(restored.saveStateToString(), saved);

    // The restored detector must continue the sequence identically.
    for (int i = 0; i < 16; ++i) {
        const double r = (i % 3 == 0) ? 0.95 : 0.1 + i * 1e-3;
        EXPECT_EQ(restored.observe(r), d.observe(r)) << "step " << i;
    }
    EXPECT_EQ(restored.saveStateToString(), d.saveStateToString());
}

TEST(TuneDrift, RestoreRejectsMalformedState)
{
    DriftDetector d(baseOptions());
    EXPECT_THROW(d.restoreStateFromString("not a snapshot"),
                 FatalError);
    EXPECT_THROW(d.restoreStateFromString("hwsw-drift-state 99\n"),
                 FatalError);
    // Truncated window list.
    EXPECT_THROW(d.restoreStateFromString(
                     "hwsw-drift-state 1\nenvelope 0.1\n"
                     "state 1 streak 0\nwindow 5 0.1 0.2\n"),
                 FatalError);
}

} // namespace
} // namespace hwsw::tune
