// Unit tests for the Table 2 hardware design space.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <set>

#include "uarch/config.hpp"

namespace hwsw::uarch {
namespace {

TEST(UarchConfig, GridSizeMatchesLevels)
{
    std::uint64_t expect = 1;
    for (int l : UarchConfig::levelsPerDim())
        expect *= static_cast<std::uint64_t>(l);
    EXPECT_EQ(UarchConfig::gridSize(), expect);
    EXPECT_GT(UarchConfig::gridSize(), 1000000u);
}

TEST(UarchConfig, ExtremeDesignsPresent)
{
    // Table 2 includes extreme designs so models infer interior
    // points accurately.
    const auto &levels = UarchConfig::levelsPerDim();
    std::array<int, kNumHwFeatures> lo{}, hi{};
    for (std::size_t d = 0; d < kNumHwFeatures; ++d)
        hi[d] = levels[d] - 1;
    const UarchConfig weak = UarchConfig::fromIndices(lo);
    const UarchConfig strong = UarchConfig::fromIndices(hi);
    EXPECT_EQ(weak.width, 1);
    EXPECT_EQ(strong.width, 8);
    EXPECT_EQ(weak.lsq, 11);
    EXPECT_EQ(strong.lsq, 36);
    EXPECT_EQ(weak.rob, 64);
    EXPECT_EQ(strong.rob, 224);
    EXPECT_EQ(weak.dcacheKB, 16);
    EXPECT_EQ(strong.dcacheKB, 128);
    EXPECT_EQ(weak.l2KB, 256);
    EXPECT_EQ(strong.l2KB, 4096);
    EXPECT_EQ(weak.l2Latency, 6);
    EXPECT_EQ(strong.l2Latency, 14);
    EXPECT_EQ(weak.mshrs, 1);
    EXPECT_EQ(strong.mshrs, 8);
}

TEST(UarchConfig, WindowResourcesScaleTogether)
{
    // y2 scales LSQ/registers/IQ/ROB jointly (Table 2 grouping).
    for (int idx = 0; idx < 6; ++idx) {
        std::array<int, kNumHwFeatures> grid{};
        grid[1] = idx;
        const UarchConfig c = UarchConfig::fromIndices(grid);
        EXPECT_EQ(c.lsq, 11 + 5 * idx);
        EXPECT_EQ(c.iq, 22 + 10 * idx);
        EXPECT_EQ(c.rob, 64 + 32 * idx);
        EXPECT_EQ(c.physRegs, 86 + 42 * idx);
    }
}

TEST(UarchConfig, FromIndicesRejectsOutOfRange)
{
    std::array<int, kNumHwFeatures> idx{};
    idx[0] = 99;
    EXPECT_THROW(UarchConfig::fromIndices(idx), FatalError);
    idx[0] = -1;
    EXPECT_THROW(UarchConfig::fromIndices(idx), FatalError);
}

TEST(UarchConfig, RandomSampleStaysOnGrid)
{
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const UarchConfig c = UarchConfig::randomSample(rng);
        EXPECT_TRUE(c.width == 1 || c.width == 2 || c.width == 4 ||
                    c.width == 8);
        EXPECT_GE(c.mshrs, 1);
        EXPECT_LE(c.mshrs, 8);
        EXPECT_GE(c.dcacheKB, 16);
        EXPECT_LE(c.dcacheKB, 128);
        EXPECT_GE(c.l2Latency, 6);
        EXPECT_LE(c.l2Latency, 14);
    }
}

TEST(UarchConfig, RandomSampleCoversDimensions)
{
    Rng rng(11);
    std::set<int> widths, mshrs;
    for (int i = 0; i < 500; ++i) {
        const UarchConfig c = UarchConfig::randomSample(rng);
        widths.insert(c.width);
        mshrs.insert(c.mshrs);
    }
    EXPECT_EQ(widths.size(), 4u);
    EXPECT_EQ(mshrs.size(), 5u);
}

TEST(UarchConfig, FeatureVector)
{
    UarchConfig c;
    const auto f = c.features();
    EXPECT_EQ(f.size(), kNumHwFeatures);
    EXPECT_DOUBLE_EQ(f[0], c.width);
    EXPECT_DOUBLE_EQ(f[1], c.lsq);
    EXPECT_DOUBLE_EQ(f[4], c.dcacheKB);
    EXPECT_DOUBLE_EQ(f[12], c.cachePorts);
    EXPECT_EQ(UarchConfig::featureNames().size(), kNumHwFeatures);
}

TEST(UarchConfig, Equality)
{
    UarchConfig a, b;
    EXPECT_EQ(a, b);
    b.width = 8;
    EXPECT_NE(a, b);
}

} // namespace
} // namespace hwsw::uarch
