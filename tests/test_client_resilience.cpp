// End-to-end resilience tests for the serving client and server
// under injected faults: short socket I/O, transient read errors,
// client-side deadlines, server-side expiry shedding, accept-loop
// supervision, and allocation-failure containment. Part of the
// tier15_fault aggregate (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cerrno>
#include <memory>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/assert.hpp"
#include "common/fault/fault.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/resilience/resilience.hpp"
#include "serve/server.hpp"

#include "serve_test_util.hpp"

namespace hwsw::serve {
namespace {

class ClientResilience : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        clean();
        registry = std::make_shared<ModelRegistry>();
        registry->publish("default", testutil::makeModel(), "boot");
        ServerOptions opts;
        opts.engine.threads = 2;
        server = std::make_unique<Server>(registry, opts);
        server->start();
    }

    void TearDown() override
    {
        // Disarm before stop(): the server must not keep tripping
        // faults while tearing down, and later suites must start
        // from a quiet registry.
        clean();
        server->stop();
    }

    static void clean()
    {
        fault::FaultRegistry::instance().reset();
        fault::FaultRegistry::instance().setEnabled(false);
    }

    static void armAndEnable(std::string_view spec)
    {
        std::string err;
        ASSERT_TRUE(
            fault::FaultRegistry::instance().armSpec(spec, &err))
            << err;
        fault::FaultRegistry::instance().setEnabled(true);
    }

    Client connect(ClientOptions opts = {}) const
    {
        return Client("127.0.0.1", server->port(), opts);
    }

    std::shared_ptr<ModelRegistry> registry;
    std::unique_ptr<Server> server;
};

TEST_F(ClientResilience, ShortIoKeepsPredictionsBitExact)
{
    // Every read and write on both sides trickles one byte at a time;
    // the shared readFull/writeFull loops must reassemble frames with
    // no corruption — predictions stay bit-identical to the local
    // model.
    armAndEnable("proto.read.short");
    armAndEnable("proto.write.short");

    Client c = connect();
    const SnapshotPtr snap = registry->lookup("default");
    Rng rng(1);
    for (int i = 0; i < 8; ++i) {
        const FeatureVector row = testutil::makeRow(rng);
        const ClientPrediction out = c.predict("default", row);
        ASSERT_TRUE(out.ok) << out.error;
        ASSERT_EQ(out.values.size(), 1u);
        EXPECT_EQ(out.values[0],
                  snap->model.predict(testutil::rowRecord(row)));
    }

    // Batches exercise larger frames through the same byte trickle.
    std::vector<FeatureVector> rows;
    for (int i = 0; i < 16; ++i)
        rows.push_back(testutil::makeRow(rng));
    const ClientPrediction batch = c.predictBatch("default", rows);
    ASSERT_TRUE(batch.ok) << batch.error;
    ASSERT_EQ(batch.values.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(batch.values[i],
                  snap->model.predict(testutil::rowRecord(rows[i])));
    c.quit();
}

TEST_F(ClientResilience, TransientReadErrorIsRetriedToSuccess)
{
    // One injected read error (whichever side's read reaches the
    // point first) kills the connection mid-request; the idempotent
    // predict must reconnect, retry, and still answer correctly.
    armAndEnable("proto.read.err:once,errno=104");

    Client c = connect();
    Rng rng(2);
    const FeatureVector row = testutil::makeRow(rng);
    const ClientPrediction out = c.predict("default", row);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.values[0],
              registry->lookup("default")->model.predict(
                  testutil::rowRecord(row)));
    EXPECT_GE(out.attempts, 2);

    const ClientStats &st = c.transportStats();
    EXPECT_GE(st.retries, 1u);
    EXPECT_GE(st.reconnects, 1u);
    c.quit();
}

TEST_F(ClientResilience, RequestDeadlineTimesOutClientSide)
{
    // The server stalls (injected dispatch delay) far past the
    // client's request budget: predict must come back classified as
    // timedOut instead of hanging or throwing.
    armAndEnable("serve.dispatch.delay:skew=0.3");

    ClientOptions opts;
    opts.requestTimeout = 0.05;
    opts.retry.maxAttempts = 1;
    Client c = connect(opts);
    Rng rng(3);
    const ClientPrediction out =
        c.predict("default", testutil::makeRow(rng));
    EXPECT_FALSE(out.ok);
    EXPECT_TRUE(out.timedOut);
    EXPECT_FALSE(out.error.empty());
    EXPECT_GE(c.transportStats().timeouts, 1u);
}

TEST_F(ClientResilience, ServerShedsAlreadyExpiredWork)
{
    // Drive the wire directly: a request announcing a zero remaining
    // budget must be shed with "expired" before any model work, and
    // accounted in the expired counter — not in errors.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    Rng rng(4);
    const std::string request =
        "@deadline 0\n" +
        makePredictRequest("default", testutil::makeRow(rng));
    ASSERT_TRUE(writeFrame(fd, request));
    std::string response;
    ASSERT_TRUE(readFrame(fd, response));
    EXPECT_EQ(response, "expired");

    // The same session still serves live-budget requests.
    ASSERT_TRUE(writeFrame(fd, makePingRequest()));
    ASSERT_TRUE(readFrame(fd, response));
    EXPECT_EQ(response, "ok pong");
    ::close(fd);

    const VerbSummary s = server->latency().summary(Verb::Predict);
    EXPECT_EQ(s.expired, 1u);
    EXPECT_EQ(s.errors, 0u);
}

TEST_F(ClientResilience, AcceptFaultIsSupervisedAndRetried)
{
    // The kernel completes the TCP handshake, then the injected
    // accept failure drops the connection server-side. The accept
    // loop must log a retry and keep serving; the client sees a dead
    // session and transparently reconnects.
    armAndEnable("serve.accept.fail:once,errno=24");

    Client c = connect();
    EXPECT_TRUE(c.ping());
    EXPECT_GE(server->acceptRetries(), 1u);
    EXPECT_GE(c.transportStats().reconnects, 1u);
    EXPECT_TRUE(server->running());
    c.quit();
}

TEST_F(ClientResilience, AllocationFailurePoisonsOneRequestOnly)
{
    armAndEnable("serve.dispatch.alloc:once");

    Client c = connect();
    Rng rng(5);
    const FeatureVector row = testutil::makeRow(rng);
    const ClientPrediction bad = c.predict("default", row);
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("out-of-memory"), std::string::npos)
        << bad.error;

    // The connection and the server both survive the unwound request.
    const ClientPrediction good = c.predict("default", row);
    ASSERT_TRUE(good.ok) << good.error;
    EXPECT_TRUE(server->running());
    c.quit();
}

TEST_F(ClientResilience, RetryExhaustionNamesEndpointAndCause)
{
    // When every reconnect attempt is refused, the classified error
    // must name the endpoint and the underlying cause — a
    // misconfigured host:port has to be diagnosable from the message
    // alone, not from "connection lost" plus a shrug.
    Client c = connect();
    ASSERT_TRUE(c.ping());
    const std::string endpoint =
        "127.0.0.1:" + std::to_string(server->port());

    // Sever the live connection, then refuse every reconnect the way
    // a dead endpoint would (ECONNREFUSED).
    server->stop();
    armAndEnable("client.connect.fail:errno=111");

    Rng rng(6);
    const ClientPrediction out =
        c.predict("default", testutil::makeRow(rng));
    EXPECT_FALSE(out.ok);
    EXPECT_FALSE(out.timedOut);
    EXPECT_EQ(out.attempts, 3); // the full default retry budget
    EXPECT_NE(out.error.find("connection lost"), std::string::npos)
        << out.error;
    EXPECT_NE(out.error.find(endpoint), std::string::npos)
        << out.error;
    EXPECT_NE(out.error.find("Connection refused"), std::string::npos)
        << out.error;
    EXPECT_GE(c.transportStats().transportErrors, 1u);

    // Control verbs surface the same diagnosis via FatalError.
    try {
        (void)c.stats();
        FAIL() << "stats() must throw once the transport is gone";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(endpoint),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("Connection refused"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(ClientResilience, ReconnectReResolvesEndpointEachAttempt)
{
    // Regression: the endpoint must be re-resolved on EVERY connect
    // attempt, not cached from construction — a failed-over host can
    // come back under a new address mid-run. One injected resolution
    // failure on the first reconnect must not poison the retry loop:
    // the next attempt resolves afresh and succeeds.
    armAndEnable("proto.read.err:once,errno=104");
    armAndEnable("client.resolve.fail:nth=2,once,errno=113");

    // A hostname (not a dotted literal) forces the getaddrinfo path.
    Client c("localhost", server->port(), {});
    Rng rng(7);
    const FeatureVector row = testutil::makeRow(rng);
    const ClientPrediction out = c.predict("default", row);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_GE(out.attempts, 2);
    EXPECT_EQ(out.values[0],
              registry->lookup("default")->model.predict(
                  testutil::rowRecord(row)));

    // trips == 1 proves the reconnect went through resolution again
    // (a cached address would never consult the point); the overall
    // success proves the attempt after the poisoned one resolved
    // afresh rather than reusing the failure.
    const auto resolve =
        fault::FaultRegistry::instance().stats("client.resolve.fail");
    EXPECT_EQ(resolve.trips, 1u);
    EXPECT_GE(c.transportStats().reconnects, 1u);
    c.quit();
}

TEST(BackoffSchedule, JitterStaysInsideConfiguredBounds)
{
    resilience::RetryPolicy p;
    p.initialBackoff = 0.010;
    p.maxBackoff = 10.0; // no cap interference for this check
    p.multiplier = 2.0;
    p.jitterFrac = 0.25;

    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        resilience::Backoff b(p, seed);
        double nominal = p.initialBackoff;
        for (int i = 0; i < 8; ++i) {
            const double d = b.nextDelaySeconds();
            EXPECT_GE(d, nominal * (1.0 - p.jitterFrac))
                << "seed " << seed << " retry " << i;
            EXPECT_LE(d, nominal * (1.0 + p.jitterFrac))
                << "seed " << seed << " retry " << i;
            nominal *= p.multiplier;
        }
        EXPECT_EQ(b.retries(), 8);
    }
}

TEST(BackoffSchedule, DeterministicUnderFixedSeed)
{
    // Reproducible schedules are what make the fault tests (and any
    // field repro) deterministic: same policy + same seed -> same
    // delays, different seed -> decorrelated delays (no retry storm
    // synchronization).
    const resilience::RetryPolicy p;
    resilience::Backoff a(p, 42), b(p, 42), other(p, 43);
    bool diverged = false;
    for (int i = 0; i < 8; ++i) {
        const double da = a.nextDelaySeconds();
        EXPECT_EQ(da, b.nextDelaySeconds()) << "retry " << i;
        diverged |= da != other.nextDelaySeconds();
    }
    EXPECT_TRUE(diverged);
}

TEST(BackoffSchedule, SaturatesAtCapAndStaysThere)
{
    resilience::RetryPolicy p;
    p.initialBackoff = 0.010;
    p.maxBackoff = 0.050;
    p.multiplier = 4.0;
    p.jitterFrac = 0.25;

    resilience::Backoff b(p, 9);
    for (int i = 0; i < 12; ++i) {
        const double d = b.nextDelaySeconds();
        // Jitter applies to the capped nominal value, so the hard
        // ceiling is cap * (1 + jitter) — the cap keeps a tail of
        // retries from backing off into minutes.
        EXPECT_LE(d, p.maxBackoff * (1.0 + p.jitterFrac))
            << "retry " << i;
        if (i >= 2) // nominal: 10ms, 40ms, 50ms, 50ms, ...
            EXPECT_GE(d, p.maxBackoff * (1.0 - p.jitterFrac))
                << "retry " << i;
    }
}

TEST_F(ClientResilience, HealthVerbReportsServingState)
{
    Client c = connect();
    const std::string line = c.health();
    EXPECT_TRUE(line.starts_with("ok healthy")) << line;
    EXPECT_NE(line.find("models 1"), std::string::npos) << line;
    EXPECT_NE(line.find("accept-retries"), std::string::npos) << line;
    c.quit();
}

} // namespace
} // namespace hwsw::serve
