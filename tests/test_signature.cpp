// Unit tests for shard signature extraction.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "uarch/signature.hpp"
#include "workload/apps.hpp"
#include "workload/generator.hpp"

namespace hwsw::uarch {
namespace {

using wl::MicroOp;
using wl::OpClass;

MicroOp
op(OpClass cls, std::uint64_t addr = 0, std::uint64_t pc = 0x1000)
{
    MicroOp o;
    o.cls = cls;
    o.addr = addr;
    o.pc = pc;
    return o;
}

TEST(Signature, ClassFractions)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 6; ++i)
        ops.push_back(op(OpClass::IntAlu));
    ops.push_back(op(OpClass::Load, 0x100));
    ops.push_back(op(OpClass::Store, 0x200));
    ops.push_back(op(OpClass::Branch));
    ops.push_back(op(OpClass::Branch));
    const ShardSignature sig = computeSignature(ops);
    EXPECT_DOUBLE_EQ(
        sig.classFrac[static_cast<std::size_t>(OpClass::IntAlu)], 0.6);
    EXPECT_DOUBLE_EQ(sig.loadFrac, 0.1);
    EXPECT_DOUBLE_EQ(sig.storeFrac, 0.1);
    EXPECT_DOUBLE_EQ(sig.avgBasicBlock, 5.0);
    EXPECT_EQ(sig.dAccesses, 2u);
}

TEST(Signature, IpcWindowMonotone)
{
    // Larger windows can never reduce the dataflow IPC limit.
    wl::StreamGenerator gen(wl::makeApp("hmmer"));
    const auto ops = gen.generate(16384);
    const ShardSignature sig = computeSignature(ops);
    for (std::size_t i = 1; i < sig.ipcAtWindow.size(); ++i)
        EXPECT_GE(sig.ipcAtWindow[i] + 1e-9, sig.ipcAtWindow[i - 1]);
    EXPECT_GT(sig.ipcAtWindow[0], 0.0);
}

TEST(Signature, IpcWindowInterpolation)
{
    wl::StreamGenerator gen(wl::makeApp("sjeng"));
    const auto ops = gen.generate(8192);
    const ShardSignature sig = computeSignature(ops);
    // At the sample points, interpolation is exact.
    EXPECT_DOUBLE_EQ(sig.ipcLimitAtWindow(32), sig.ipcAtWindow[2]);
    // Between points, value lies between neighbors.
    const double mid = sig.ipcLimitAtWindow(48);
    EXPECT_GE(mid, std::min(sig.ipcAtWindow[2], sig.ipcAtWindow[3]));
    EXPECT_LE(mid, std::max(sig.ipcAtWindow[2], sig.ipcAtWindow[3]));
    // Beyond the ends, clamped.
    EXPECT_DOUBLE_EQ(sig.ipcLimitAtWindow(1), sig.ipcAtWindow.front());
    EXPECT_DOUBLE_EQ(sig.ipcLimitAtWindow(4096), sig.ipcAtWindow.back());
}

TEST(Signature, SerialChainLimitsIpc)
{
    // Every op depends on its predecessor with latency 1: IPC == 1
    // regardless of window.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 1000; ++i) {
        MicroOp o = op(OpClass::IntAlu);
        if (i > 0) {
            o.depDist = 1;
            o.producerCls = OpClass::IntAlu;
        }
        ops.push_back(o);
    }
    const ShardSignature sig = computeSignature(ops);
    EXPECT_NEAR(sig.ipcAtWindow.back(), 1.0, 0.01);
}

TEST(Signature, IndependentOpsHaveHighIpc)
{
    std::vector<MicroOp> ops(1000, op(OpClass::IntAlu));
    const ShardSignature sig = computeSignature(ops);
    EXPECT_GT(sig.ipcAtWindow.back(), 100.0);
}

TEST(Signature, MissRateAtCapacityMonotone)
{
    wl::StreamGenerator gen(wl::makeApp("astar"));
    const auto ops = gen.generate(16384);
    const ShardSignature sig = computeSignature(ops);
    double prev = 1.0;
    for (double cap : {64.0, 256.0, 1024.0, 4096.0, 16384.0}) {
        const double miss = sig.missRateAtCapacity(cap, true);
        EXPECT_LE(miss, prev + 1e-12);
        prev = miss;
    }
    EXPECT_DOUBLE_EQ(sig.missRateAtCapacity(0.5, true), 1.0);
}

TEST(Signature, PredictableBranchesLowMispredicts)
{
    wl::AppSpec app = wl::makeApp("bwaves"); // predictability ~0.99
    wl::StreamGenerator gen(app);
    const auto ops = gen.generate(30000);
    const ShardSignature sig = computeSignature(ops);
    // Mispredicts per *branch* should be small.
    const double per_branch = sig.mispredictPerOp /
        sig.classFrac[static_cast<std::size_t>(OpClass::Branch)];
    EXPECT_LT(per_branch, 0.15);
}

TEST(Signature, HardBranchesMispredictMore)
{
    const auto easy = computeSignature(
        wl::StreamGenerator(wl::makeApp("bwaves")).generate(30000));
    const auto hard = computeSignature(
        wl::StreamGenerator(wl::makeApp("sjeng")).generate(30000));
    const double easy_rate = easy.mispredictPerOp /
        easy.classFrac[static_cast<std::size_t>(OpClass::Branch)];
    const double hard_rate = hard.mispredictPerOp /
        hard.classFrac[static_cast<std::size_t>(OpClass::Branch)];
    EXPECT_GT(hard_rate, 1.5 * easy_rate);
}

TEST(Signature, StreamyFractionSeparatesPatterns)
{
    const auto seq = computeSignature(
        wl::StreamGenerator(wl::makeApp("gemsFDTD")).generate(20000));
    const auto rnd = computeSignature(
        wl::StreamGenerator(wl::makeApp("sjeng")).generate(20000));
    EXPECT_GT(seq.streamyFrac, 0.5);
    EXPECT_GT(seq.streamyFrac, rnd.streamyFrac + 0.25);
}

TEST(Signature, WarmSignaturesReduceColdMisses)
{
    const auto shards = wl::makeShards(wl::makeApp("omnetpp"), 8192, 6);
    const auto warm = computeSignatures(shards);
    const auto cold = computeSignature(shards[5]);
    // Miss rate at huge capacity reflects only compulsory misses;
    // warm state must show fewer of them for a later shard.
    const double warm_cold_rate =
        warm[5].missRateAtCapacity(1e9, true);
    const double cold_cold_rate = cold.missRateAtCapacity(1e9, true);
    EXPECT_LT(warm_cold_rate, cold_cold_rate);
}

TEST(Signature, EmptyShardIsFatal)
{
    std::vector<MicroOp> ops;
    EXPECT_THROW(computeSignature(ops), FatalError);
}

TEST(Signature, OpLatencies)
{
    EXPECT_EQ(opLatency(OpClass::IntAlu), 1);
    EXPECT_GT(opLatency(OpClass::IntMulDiv), opLatency(OpClass::IntAlu));
    EXPECT_GT(opLatency(OpClass::FpMulDiv), opLatency(OpClass::Branch));
}

} // namespace
} // namespace hwsw::uarch
