// Tests for the Table 4 synthetic matrix generators, parameterized
// across all eleven matrices.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "spmv/bcsr.hpp"
#include "spmv/matgen.hpp"

namespace hwsw::spmv {
namespace {

class Table4Test : public ::testing::TestWithParam<MatrixInfo>
{
};

TEST_P(Table4Test, ScaledDimensionAndNnz)
{
    const MatrixInfo &info = GetParam();
    const double scale = 0.1;
    const CsrMatrix m = generateMatrix(info, scale, 1);
    EXPECT_EQ(m.rows(), m.cols());
    // Dimension within rounding of the scaled target.
    EXPECT_NEAR(static_cast<double>(m.rows()),
                info.paperDimension * scale,
                0.02 * info.paperDimension * scale + 48);
    // Non-zeros within 30% of the scaled target (generators are
    // stochastic and deduplicate).
    EXPECT_NEAR(static_cast<double>(m.nnz()), info.paperNnz * scale,
                0.3 * info.paperNnz * scale);
}

TEST_P(Table4Test, Deterministic)
{
    const CsrMatrix a = generateMatrix(GetParam(), 0.05, 9);
    const CsrMatrix b = generateMatrix(GetParam(), 0.05, 9);
    EXPECT_EQ(a.nnz(), b.nnz());
    EXPECT_EQ(a.rows(), b.rows());
    for (std::size_t i = 0; i < std::min<std::size_t>(a.nnz(), 200); ++i)
        EXPECT_EQ(a.colIdx()[i], b.colIdx()[i]);
}

TEST_P(Table4Test, EveryRowHasDiagonalCoverage)
{
    const CsrMatrix m = generateMatrix(GetParam(), 0.05, 2);
    // No empty rows: generators place a diagonal entry per row
    // (FEM generators per block row).
    const auto &info = GetParam();
    const auto rs = m.rowStart();
    std::int32_t empty = 0;
    for (std::int32_t r = 0; r < m.rows(); ++r)
        empty += (rs[r] == rs[r + 1]);
    if (info.structure == MatStructure::FemBlocked) {
        EXPECT_LT(empty, m.rows() / 10);
    } else {
        EXPECT_EQ(empty, 0);
    }
}

TEST_P(Table4Test, NaturalBlockHasLowFill)
{
    const MatrixInfo &info = GetParam();
    if (info.structure != MatStructure::FemBlocked)
        GTEST_SKIP() << "only FEM matrices have natural blocks";
    const CsrMatrix m = generateMatrix(info, 0.05, 3);
    // Blocking at the natural block size needs (almost) no padding...
    EXPECT_LT(fillRatio(m, info.blockR, info.blockC), 1.1);
    // ...while an incommensurate size (natural+1) pads considerably.
    EXPECT_GT(fillRatio(m, info.blockR + 1, info.blockC + 1), 1.25);
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, Table4Test,
                         ::testing::ValuesIn(table4()),
                         [](const auto &info) {
                             return info.param.name;
                         });

TEST(Table4, HasElevenEntries)
{
    EXPECT_EQ(table4().size(), 11u);
    for (std::size_t i = 0; i < table4().size(); ++i)
        EXPECT_EQ(table4()[i].id, static_cast<int>(i) + 1);
}

TEST(Table4, PaperSparsityMatchesPublishedNumbers)
{
    // Spot-check Table 4's sparsity column.
    EXPECT_NEAR(matrixInfo("3dtube").paperSparsity(), 7.93e-4, 5e-6);
    EXPECT_NEAR(matrixInfo("pwtk").paperSparsity(), 1.25e-4, 5e-6);
    EXPECT_NEAR(matrixInfo("raefsky3").paperSparsity(), 3.31e-3, 5e-5);
}

TEST(Table4, UnknownNameIsFatal)
{
    EXPECT_THROW(matrixInfo("does-not-exist"), FatalError);
}

TEST(Table4, BadScaleIsFatal)
{
    EXPECT_THROW(generateMatrix(table4()[0], 0.0), FatalError);
    EXPECT_THROW(generateMatrix(table4()[0], 1.5), FatalError);
}

TEST(Table4, Raefsky3ColumnMultiplesOfFour)
{
    // Figure 12: for raefsky3, 1, 4, and 8 block columns are equally
    // effective (fill ~1) because dense substructure arises in
    // multiples of 4.
    const CsrMatrix m = generateMatrix(matrixInfo("raefsky3"), 0.1, 4);
    EXPECT_LT(fillRatio(m, 8, 4), 1.05);
    EXPECT_LT(fillRatio(m, 8, 8), 1.1);
    EXPECT_GT(fillRatio(m, 8, 5), 1.2);
    EXPECT_GT(fillRatio(m, 6, 6), 1.2);
}

TEST(Table4, BandedMatrixPenalizesAllBlocking)
{
    const CsrMatrix m = generateMatrix(matrixInfo("memplus"), 0.1, 5);
    EXPECT_GT(fillRatio(m, 2, 2), 1.5);
    EXPECT_GT(fillRatio(m, 4, 4), fillRatio(m, 2, 2));
}

} // namespace
} // namespace hwsw::spmv
