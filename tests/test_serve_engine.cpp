// Tests for the PredictionEngine admission + batch execution path.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/engine.hpp"

#include "serve_test_util.hpp"

namespace hwsw::serve {
namespace {

std::shared_ptr<ModelRegistry>
registryWith(const std::string &name)
{
    auto reg = std::make_shared<ModelRegistry>();
    reg->publish(name, testutil::makeModel(), "test");
    return reg;
}

EngineOptions
smallOpts()
{
    EngineOptions o;
    o.threads = 2;
    return o;
}

TEST(ServeEngine, ScalarMatchesDirectModelPrediction)
{
    auto reg = registryWith("m");
    PredictionEngine eng(reg, smallOpts());
    Rng rng(1);
    for (int i = 0; i < 10; ++i) {
        const FeatureVector row = testutil::makeRow(rng);
        const PredictOutcome out = eng.predictOne("m", row);
        ASSERT_EQ(out.status, PredictStatus::Ok);
        EXPECT_EQ(out.modelVersion, 1u);
        ASSERT_EQ(out.predictions.size(), 1u);
        const double direct = reg->lookup("m")->model.predict(
            testutil::rowRecord(row));
        EXPECT_EQ(out.predictions[0], direct);
    }
}

TEST(ServeEngine, BatchFansOutOverThePool)
{
    auto reg = registryWith("m");
    EngineOptions opts = smallOpts();
    opts.inlineBatch = 4; // force the pool path
    PredictionEngine eng(reg, opts);

    Rng rng(2);
    std::vector<FeatureVector> rows;
    for (int i = 0; i < 64; ++i)
        rows.push_back(testutil::makeRow(rng));

    const PredictOutcome out = eng.predict("m", rows);
    ASSERT_EQ(out.status, PredictStatus::Ok);
    ASSERT_EQ(out.predictions.size(), rows.size());
    const SnapshotPtr snap = reg->lookup("m");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(out.predictions[i],
                  snap->model.predict(testutil::rowRecord(rows[i])));
    }
    EXPECT_EQ(eng.counters().admitted, rows.size());
    EXPECT_EQ(eng.inFlight(), 0u);
}

TEST(ServeEngine, UnknownModelAndEmptyBatch)
{
    auto reg = registryWith("m");
    PredictionEngine eng(reg, smallOpts());
    Rng rng(3);
    EXPECT_EQ(eng.predictOne("ghost", testutil::makeRow(rng)).status,
              PredictStatus::NoModel);
    EXPECT_EQ(eng.predict("m", {}).status, PredictStatus::TooLarge);
}

TEST(ServeEngine, OversizedBatchIsRefused)
{
    auto reg = registryWith("m");
    EngineOptions opts = smallOpts();
    opts.maxBatch = 8;
    PredictionEngine eng(reg, opts);
    Rng rng(4);
    std::vector<FeatureVector> rows(9, testutil::makeRow(rng));
    EXPECT_EQ(eng.predict("m", rows).status, PredictStatus::TooLarge);
    EXPECT_EQ(eng.counters().admitted, 0u);
}

TEST(ServeEngine, ShedsWhenOverCapacity)
{
    auto reg = registryWith("m");
    EngineOptions opts = smallOpts();
    opts.capacity = 8;
    opts.maxBatch = 64; // batches admissible by size, not by capacity
    PredictionEngine eng(reg, opts);
    Rng rng(5);
    std::vector<FeatureVector> rows(16, testutil::makeRow(rng));

    const PredictOutcome out = eng.predict("m", rows);
    EXPECT_EQ(out.status, PredictStatus::Shed);
    EXPECT_TRUE(out.predictions.empty());
    EXPECT_EQ(eng.counters().shed, 16u);
    EXPECT_EQ(eng.inFlight(), 0u); // budget released on refusal

    // Small requests still go through afterwards.
    EXPECT_EQ(eng.predictOne("m", rows[0]).status, PredictStatus::Ok);
}

TEST(ServeEngine, HotSwapNeverDisturbsInFlightRequests)
{
    // Two threads predict continuously while the main thread
    // republishes; every outcome must be internally consistent
    // (status Ok, one prediction per row, a version that existed).
    auto reg = registryWith("m");
    PredictionEngine eng(reg, smallOpts());

    std::atomic<bool> go{true};
    std::atomic<std::uint64_t> okCount{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
        readers.emplace_back([&, t] {
            Rng rng(10 + t);
            std::vector<FeatureVector> rows;
            for (int i = 0; i < 24; ++i)
                rows.push_back(testutil::makeRow(rng));
            while (go.load(std::memory_order_relaxed)) {
                const PredictOutcome out = eng.predict("m", rows);
                ASSERT_EQ(out.status, PredictStatus::Ok);
                ASSERT_EQ(out.predictions.size(), rows.size());
                ASSERT_GE(out.modelVersion, 1u);
                okCount.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    // Keep republishing until the readers have demonstrably overlapped
    // with swaps (a fixed publish count can finish before a reader
    // gets scheduled on a small machine).
    const core::HwSwModel model = testutil::makeModel();
    int publishes = 0;
    while (okCount.load(std::memory_order_relaxed) < 20 &&
           publishes < 20000) {
        reg->publish("m", model, "swap");
        ++publishes;
        std::this_thread::yield();
    }
    go.store(false, std::memory_order_relaxed);
    for (auto &t : readers)
        t.join();

    EXPECT_GT(okCount.load(), 0u);
    EXPECT_EQ(eng.counters().shed, 0u);
    EXPECT_EQ(eng.inFlight(), 0u);
}

} // namespace
} // namespace hwsw::serve
