// Regression suite for the evaluation fast path: fold-level base
// caching, block-cached design assembly, workspace fitting, and the
// genetic search's cached evaluate(). Every comparison against the
// legacy path is bit-exact (EXPECT_EQ on doubles) — the search's
// cross-thread determinism contract depends on the cached and
// uncached pipelines performing identical arithmetic.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "core/genetic.hpp"
#include "core/model.hpp"
#include "stats/linear_model.hpp"

namespace hwsw::core {
namespace {

/** Multi-variable dataset exercising stabilizers, splines, widths. */
Dataset
fastPathData(std::size_t per_app, std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"alpha", "beta", "gamma"}) {
        const double base = 1.0 + (app[0] - 'a') * 0.5;
        for (std::size_t i = 0; i < per_app; ++i) {
            ProfileRecord r;
            r.app = app;
            r.vars[0] = rng.nextUniform(0.0, 1.0);
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[7] = std::exp(rng.nextGaussian() * 2.0 + 5.0);
            r.vars[kNumSw] = 1 << rng.nextInt(4);
            r.vars[kNumSw + 4] = 16 << rng.nextInt(4);
            r.perf = base + 2.0 * r.vars[6] + 3.0 / r.vars[kNumSw] +
                0.3 * std::sqrt(r.vars[7]) * 16.0 / r.vars[kNumSw + 4];
            ds.add(r);
        }
    }
    return ds;
}

/** A spec covering every gene class plus interactions. */
ModelSpec
richSpec()
{
    ModelSpec spec;
    spec.genes[0] = 1;            // linear
    spec.genes[6] = 2;            // quadratic
    spec.genes[7] = 4;            // spline
    spec.genes[kNumSw] = 3;       // cubic
    spec.genes[kNumSw + 4] = 1;   // linear
    spec.interactions = {
        {0, 7},
        {6, static_cast<std::uint16_t>(kNumSw)},
        {5, 9}, // neither variable has a gene
    };
    spec.normalize();
    return spec;
}

TEST(DesignFastPath, BaseCacheMatchesBaseValue)
{
    const Dataset ds = fastPathData(40, 11);
    const BasisTable basis = computeBasisTable(ds);
    const DesignBuilder b(richSpec(), basis);
    const BaseCache bases(ds, basis);
    ASSERT_EQ(bases.numRecords(), ds.size());
    for (std::size_t rec = 0; rec < ds.size(); ++rec)
        for (std::size_t v = 0; v < kNumVars; ++v) {
            EXPECT_EQ(bases.value(rec, v), b.baseValue(ds[rec], v))
                << "record " << rec << " var " << v;
            EXPECT_EQ(bases.var(v)[rec], bases.value(rec, v));
        }
}

TEST(DesignFastPath, FillRowFromBasesMatchesFillRow)
{
    const Dataset ds = fastPathData(30, 12);
    const BasisTable basis = computeBasisTable(ds);
    const DesignBuilder b(richSpec(), basis);
    const BaseCache bases(ds, basis);
    std::vector<double> legacy(b.numColumns());
    std::vector<double> cached(b.numColumns());
    for (std::size_t rec = 0; rec < ds.size(); ++rec) {
        b.fillRow(ds[rec], legacy);
        b.fillRowFromBases(bases, rec, cached);
        for (std::size_t c = 0; c < legacy.size(); ++c)
            EXPECT_EQ(legacy[c], cached[c])
                << "record " << rec << " column " << c;
    }
}

TEST(DesignFastPath, BuildFromBasesMatchesBuild)
{
    const Dataset ds = fastPathData(35, 13);
    const BasisTable basis = computeBasisTable(ds);
    const DesignBuilder b(richSpec(), basis);
    const BaseCache bases(ds, basis);
    const stats::Matrix legacy = b.build(ds);
    const stats::Matrix cached = b.buildFromBases(bases);
    ASSERT_EQ(cached.rows(), legacy.rows());
    ASSERT_EQ(cached.cols(), legacy.cols());
    for (std::size_t r = 0; r < legacy.rows(); ++r)
        for (std::size_t c = 0; c < legacy.cols(); ++c)
            EXPECT_EQ(legacy(r, c), cached(r, c));
}

TEST(DesignFastPath, BlockCachedBuildMatchesBuildAcrossSpecs)
{
    // Many specs share one bound block cache — exactly the search's
    // usage pattern — and a reused output matrix.
    const Dataset ds = fastPathData(30, 14);
    const BasisTable basis = computeBasisTable(ds);
    const BaseCache bases(ds, basis);
    DesignBlockCache blocks;
    blocks.bind(bases, basis);
    stats::Matrix out;
    Rng rng(321);
    for (int iter = 0; iter < 25; ++iter) {
        const ModelSpec spec = ModelSpec::random(rng, 0.4, 8);
        const DesignBuilder b(spec, basis);
        const stats::Matrix legacy = b.build(ds);
        b.buildFromBases(bases, blocks, out);
        ASSERT_EQ(out.rows(), legacy.rows());
        ASSERT_EQ(out.cols(), legacy.cols());
        for (std::size_t r = 0; r < legacy.rows(); ++r)
            for (std::size_t c = 0; c < legacy.cols(); ++c)
                EXPECT_EQ(legacy(r, c), out(r, c))
                    << "iteration " << iter;
    }
}

TEST(DesignFastPath, RebindingBlockCacheToNewRecordsIsSafe)
{
    const Dataset ds1 = fastPathData(30, 15);
    const Dataset ds2 = fastPathData(20, 16);
    const BasisTable basis1 = computeBasisTable(ds1);
    const BasisTable basis2 = computeBasisTable(ds2);
    const BaseCache bases1(ds1, basis1);
    const BaseCache bases2(ds2, basis2);
    const ModelSpec spec = richSpec();

    DesignBlockCache blocks;
    blocks.bind(bases1, basis1);
    stats::Matrix out;
    const DesignBuilder b1(spec, basis1);
    b1.buildFromBases(bases1, blocks, out); // warm the cache

    // Rebind must drop every stale block and serve ds2 correctly.
    blocks.bind(bases2, basis2);
    const DesignBuilder b2(spec, basis2);
    b2.buildFromBases(bases2, blocks, out);
    const stats::Matrix legacy = b2.build(ds2);
    ASSERT_EQ(out.rows(), legacy.rows());
    for (std::size_t r = 0; r < legacy.rows(); ++r)
        for (std::size_t c = 0; c < legacy.cols(); ++c)
            EXPECT_EQ(legacy(r, c), out(r, c));

    // Using a cache bound elsewhere is an invariant violation.
    EXPECT_THROW(b1.buildFromBases(bases1, blocks, out), PanicError);
}

/** Fit a model through the legacy and fast paths; return both. */
struct FitPair
{
    HwSwModel legacy;
    HwSwModel fast;
};

FitPair
fitBothPaths(const ModelSpec &spec, const Dataset &train,
             std::span<const double> weights = {})
{
    const BasisTable basis = computeBasisTable(train);
    FitPair p;
    p.legacy.fit(spec, train, basis, weights);

    const BaseCache bases(train, basis);
    std::vector<double> zlog = train.perfColumn();
    for (double &v : zlog)
        v = std::log(v);
    DesignBlockCache blocks;
    blocks.bind(bases, basis);
    FitWorkspace ws;
    p.fast.fitFromBases(spec, basis, bases, zlog, blocks, ws, weights);
    return p;
}

TEST(ModelFastPath, FitFromBasesMatchesLegacyFit)
{
    const Dataset train = fastPathData(50, 21);
    const FitPair p = fitBothPaths(richSpec(), train);
    ASSERT_EQ(p.fast.coefficients().size(),
              p.legacy.coefficients().size());
    for (std::size_t i = 0; i < p.legacy.coefficients().size(); ++i)
        EXPECT_EQ(p.legacy.coefficients()[i], p.fast.coefficients()[i])
            << "coefficient " << i;
    EXPECT_EQ(p.legacy.numDroppedColumns(), p.fast.numDroppedColumns());
}

TEST(ModelFastPath, WeightedFitFromBasesMatchesLegacyFit)
{
    const Dataset train = fastPathData(50, 22);
    Rng rng(7);
    std::vector<double> w(train.size());
    for (double &x : w)
        x = rng.nextUniform(0.5, 3.0);
    const FitPair p = fitBothPaths(richSpec(), train, w);
    for (std::size_t i = 0; i < p.legacy.coefficients().size(); ++i)
        EXPECT_EQ(p.legacy.coefficients()[i], p.fast.coefficients()[i])
            << "coefficient " << i;
}

TEST(ModelFastPath, PredictAllFromBasesMatchesPredictAll)
{
    const Dataset train = fastPathData(50, 23);
    const Dataset val = fastPathData(25, 24);
    const FitPair p = fitBothPaths(richSpec(), train);

    const BaseCache valBases(val, p.legacy.builder().basis());
    FitWorkspace ws;
    std::vector<double> fast;
    p.fast.predictAllFromBases(valBases, ws, fast);
    const std::vector<double> legacy = p.legacy.predictAll(val);
    ASSERT_EQ(fast.size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i)
        EXPECT_EQ(legacy[i], fast[i]) << "prediction " << i;
}

TEST(ModelFastPath, ScratchPredictMatchesPredict)
{
    const Dataset train = fastPathData(50, 25);
    const Dataset val = fastPathData(10, 26);
    const FitPair p = fitBothPaths(richSpec(), train);
    std::vector<double> scratch; // reused dirty across calls
    for (std::size_t i = 0; i < val.size(); ++i)
        EXPECT_EQ(p.legacy.predict(val[i]),
                  p.legacy.predict(val[i], scratch))
            << "record " << i;
}

/**
 * Replicate GeneticSearch's fold construction and score @p spec the
 * legacy way: full refit from raw profiles per fold, no caches.
 */
std::pair<double, double>
legacyEvaluate(const Dataset &data, const GaOptions &opts,
               const ModelSpec &spec)
{
    double sum_err = 0.0;
    double penalties = 0.0;
    std::size_t n_folds = 0;
    Rng rng(opts.seed);
    for (const std::string &app : data.appNames()) {
        const Dataset::Split split =
            data.splitApp(app, opts.trainFrac, rng);
        std::vector<std::size_t> train_idx;
        for (std::size_t i = 0; i < data.size(); ++i)
            if (data[i].app != app)
                train_idx.push_back(i);
        const std::size_t others = train_idx.size();
        train_idx.insert(train_idx.end(), split.train.begin(),
                         split.train.end());
        const Dataset train = data.subset(train_idx);
        const Dataset validation = data.subset(split.validation);
        std::vector<double> weights;
        if (opts.trainWeight != 1.0) {
            weights.assign(train.size(), 1.0);
            for (std::size_t i = others; i < train.size(); ++i)
                weights[i] = opts.trainWeight;
        }

        HwSwModel model;
        model.fit(spec, train, computeBasisTable(train), weights);
        const stats::FitMetrics m = model.validate(validation);
        sum_err += m.medianAbsPctError;
        penalties += opts.collinearityPenalty *
            static_cast<double>(model.numDroppedColumns());
        penalties += opts.complexityPenalty *
            static_cast<double>(model.numColumns());
        ++n_folds;
    }
    const auto n = static_cast<double>(n_folds);
    return {sum_err / n + penalties / n, sum_err};
}

TEST(EvalFastPath, EvaluateMatchesLegacyPipeline)
{
    const Dataset data = fastPathData(40, 31);
    GaOptions opts;
    opts.numThreads = 1;
    opts.seed = 55;
    const GeneticSearch search(data, opts);
    Rng rng(99);
    for (int iter = 0; iter < 10; ++iter) {
        const ModelSpec spec = ModelSpec::random(rng, 0.4, 6);
        const auto [fit_fast, err_fast] = search.evaluate(spec);
        const auto [fit_legacy, err_legacy] =
            legacyEvaluate(data, opts, spec);
        EXPECT_EQ(fit_legacy, fit_fast) << "iteration " << iter;
        EXPECT_EQ(err_legacy, err_fast) << "iteration " << iter;
    }
}

TEST(EvalFastPath, EvaluateMatchesLegacyPipelineWeighted)
{
    const Dataset data = fastPathData(40, 32);
    GaOptions opts;
    opts.numThreads = 1;
    opts.seed = 56;
    opts.trainWeight = 5.0;
    const GeneticSearch search(data, opts);
    const ModelSpec spec = richSpec();
    const auto [fit_fast, err_fast] = search.evaluate(spec);
    const auto [fit_legacy, err_legacy] =
        legacyEvaluate(data, opts, spec);
    EXPECT_EQ(fit_legacy, fit_fast);
    EXPECT_EQ(err_legacy, err_fast);
}

TEST(EvalFastPath, PooledSearchReusesScratchSafely)
{
    // Concurrency coverage for the scratch free list: a pooled run
    // must produce the serial run's exact result. TSan builds run
    // this via the tier15_fastpath aggregate.
    const Dataset data = fastPathData(30, 33);
    GaOptions serial;
    serial.populationSize = 10;
    serial.generations = 3;
    serial.numThreads = 1;
    serial.seed = 77;
    GaOptions pooled = serial;
    pooled.numThreads = 4;

    GeneticSearch a(data, serial);
    GeneticSearch b(data, pooled);
    const GaResult ra = a.run();
    const GaResult rb = b.run();
    EXPECT_EQ(ra.best.spec, rb.best.spec);
    EXPECT_EQ(ra.best.fitness, rb.best.fitness);
    ASSERT_EQ(ra.population.size(), rb.population.size());
    for (std::size_t i = 0; i < ra.population.size(); ++i) {
        EXPECT_EQ(ra.population[i].spec, rb.population[i].spec);
        EXPECT_EQ(ra.population[i].fitness, rb.population[i].fitness);
    }
}

} // namespace
} // namespace hwsw::core
