// Cross-validation between the two halves of the substrate: the
// analytic stack-distance miss model (used by the CPI model) against
// the functional cache simulator (used by the SpMV case study), on
// identical address traces.
#include <gtest/gtest.h>

#include "uarch/cache.hpp"
#include "uarch/signature.hpp"
#include "workload/apps.hpp"
#include "workload/generator.hpp"

namespace hwsw::uarch {
namespace {

/** Simulated miss rate of a fully-associative LRU cache of C lines. */
double
simulatedMissRate(const std::vector<wl::MicroOp> &ops,
                  std::uint64_t capacity_lines)
{
    CacheConfig cfg;
    cfg.lineBytes = 64;
    cfg.sizeBytes = capacity_lines * 64;
    cfg.ways = static_cast<std::uint32_t>(capacity_lines);
    Cache cache(cfg);
    for (const auto &op : ops) {
        if (op.isMem())
            cache.access(op.addr);
    }
    return cache.stats().missRate();
}

class MissModelTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MissModelTest, AnalyticMatchesSimulatedFullyAssociativeLru)
{
    // For fully-associative LRU, stack distance theory is exact up to
    // the histogram's power-of-two binning and cold-start handling.
    wl::StreamGenerator gen(wl::makeApp(GetParam()));
    const auto ops = gen.generate(32768);
    const ShardSignature sig = computeSignature(ops);

    for (std::uint64_t cap : {64u, 256u, 1024u, 4096u}) {
        const double analytic = sig.missRateAtCapacity(
            static_cast<double>(cap), true);
        const double simulated = simulatedMissRate(ops, cap);
        // Log-binned interpolation admits error within a factor-2
        // capacity band; require agreement within 8 percentage
        // points or 35% relative.
        const double tol =
            std::max(0.08, 0.35 * std::max(simulated, 0.02));
        EXPECT_NEAR(analytic, simulated, tol)
            << GetParam() << " capacity " << cap;
    }
}

TEST_P(MissModelTest, AnalyticOrdersCapacitiesLikeSimulation)
{
    wl::StreamGenerator gen(wl::makeApp(GetParam()));
    const auto ops = gen.generate(16384);
    const ShardSignature sig = computeSignature(ops);
    // Both views must agree that bigger caches never miss more.
    double prev_sim = 1.1, prev_ana = 1.1;
    for (std::uint64_t cap : {32u, 128u, 512u, 2048u}) {
        const double sim = simulatedMissRate(ops, cap);
        const double ana = sig.missRateAtCapacity(
            static_cast<double>(cap), true);
        EXPECT_LE(sim, prev_sim + 1e-9);
        EXPECT_LE(ana, prev_ana + 1e-9);
        prev_sim = sim;
        prev_ana = ana;
    }
}

INSTANTIATE_TEST_SUITE_P(AllApps, MissModelTest,
                         ::testing::ValuesIn(wl::suiteAppNames()),
                         [](const auto &info) { return info.param; });

TEST(MissModel, SetAssociativityCorrectionIsConservative)
{
    // A set-associative cache of the same capacity misses at least
    // as often as fully-associative LRU on the same trace (for these
    // access patterns), which is what the effective-capacity
    // correction in the CPI model assumes.
    wl::StreamGenerator gen(wl::makeApp("astar"));
    const auto ops = gen.generate(16384);

    CacheConfig fa;
    fa.lineBytes = 64;
    fa.sizeBytes = 1024 * 64;
    fa.ways = 1024;
    CacheConfig sa = fa;
    sa.ways = 2;
    Cache full(fa), set2(sa);
    for (const auto &op : ops) {
        if (op.isMem()) {
            full.access(op.addr);
            set2.access(op.addr);
        }
    }
    EXPECT_GE(set2.stats().missRate() + 0.01,
              full.stats().missRate());
}

} // namespace
} // namespace hwsw::uarch
