// Unit tests for the Fenwick tree and the O(N log N) LRU stack
// distance calculator, cross-checked against a naive reference.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "uarch/stack_distance.hpp"

namespace hwsw::uarch {
namespace {

TEST(Fenwick, PrefixSums)
{
    Fenwick f(8);
    f.add(0, 1);
    f.add(3, 2);
    f.add(7, 5);
    EXPECT_EQ(f.prefix(0), 1);
    EXPECT_EQ(f.prefix(2), 1);
    EXPECT_EQ(f.prefix(3), 3);
    EXPECT_EQ(f.prefix(7), 8);
}

TEST(Fenwick, RangeSums)
{
    Fenwick f(10);
    for (std::size_t i = 0; i < 10; ++i)
        f.add(i, 1);
    EXPECT_EQ(f.range(0, 9), 10);
    EXPECT_EQ(f.range(3, 5), 3);
    EXPECT_EQ(f.range(5, 3), 0); // empty range
    EXPECT_EQ(f.range(0, 0), 1);
}

TEST(Fenwick, NegativeUpdates)
{
    Fenwick f(4);
    f.add(1, 3);
    f.add(1, -3);
    EXPECT_EQ(f.prefix(3), 0);
}

TEST(StackDistance, FirstAccessIsCold)
{
    StackDistance sd(10);
    EXPECT_EQ(sd.access(5), kColdAccess);
    EXPECT_EQ(sd.access(6), kColdAccess);
}

TEST(StackDistance, ImmediateReuseIsZero)
{
    StackDistance sd(10);
    sd.access(1);
    EXPECT_EQ(sd.access(1), 0u);
}

TEST(StackDistance, CountsDistinctIntermediateBlocks)
{
    StackDistance sd(16);
    sd.access(1);
    sd.access(2);
    sd.access(3);
    sd.access(2); // repeats do not add distinct blocks
    EXPECT_EQ(sd.access(1), 2u); // blocks {2,3} touched since
}

TEST(StackDistance, ClassicSequence)
{
    // a b c b a: SD(a at end) counts distinct {b, c} = 2;
    // SD(b second time) counts {c} = 1.
    StackDistance sd(8);
    sd.access('a');
    sd.access('b');
    sd.access('c');
    EXPECT_EQ(sd.access('b'), 1u);
    EXPECT_EQ(sd.access('a'), 2u);
}

/** Naive reference: distinct blocks since previous access. */
class NaiveStack
{
  public:
    std::uint64_t
    access(std::uint64_t block)
    {
        std::uint64_t dist = kColdAccess;
        auto it = lastPos_.find(block);
        if (it != lastPos_.end()) {
            std::set<std::uint64_t> seen;
            for (std::size_t i = it->second + 1; i < trace_.size(); ++i)
                seen.insert(trace_[i]);
            dist = seen.size();
        }
        lastPos_[block] = trace_.size();
        trace_.push_back(block);
        return dist;
    }

  private:
    std::vector<std::uint64_t> trace_;
    std::unordered_map<std::uint64_t, std::size_t> lastPos_;
};

TEST(StackDistance, MatchesNaiveOnRandomTraces)
{
    Rng rng(77);
    for (int trial = 0; trial < 5; ++trial) {
        const std::size_t n = 2000;
        StackDistance fast(n);
        NaiveStack naive;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t block = rng.nextInt(64);
            ASSERT_EQ(fast.access(block), naive.access(block))
                << "trial " << trial << " access " << i;
        }
    }
}

TEST(StackDistance, SequentialStreamMostlyCold)
{
    StackDistance sd(1000);
    std::size_t cold = 0;
    for (std::uint64_t b = 0; b < 1000; ++b)
        cold += (sd.access(b) == kColdAccess);
    EXPECT_EQ(cold, 1000u);
}

TEST(StackDistance, LoopPatternHasConstantDistance)
{
    // Cyclic access over K blocks: steady-state SD is K-1.
    constexpr std::uint64_t K = 10;
    StackDistance sd(400);
    for (int iter = 0; iter < 30; ++iter) {
        for (std::uint64_t b = 0; b < K; ++b) {
            const std::uint64_t d = sd.access(b);
            if (iter > 0)
                EXPECT_EQ(d, K - 1);
        }
    }
}

} // namespace
} // namespace hwsw::uarch
