// Unit tests for the dense matrix type.
#include <gtest/gtest.h>

#include "stats/matrix.hpp"
#include "common/assert.hpp"

namespace hwsw::stats {
namespace {

TEST(Matrix, ConstructionAndIndexing)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
    m(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(Matrix, InitializerList)
{
    Matrix m = {{1, 2}, {3, 4}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, InitializerListRejectsRagged)
{
    EXPECT_THROW((Matrix{{1, 2}, {3}}), FatalError);
}

TEST(Matrix, OutOfRangePanics)
{
    Matrix m(2, 2);
    EXPECT_THROW(m(2, 0), PanicError);
    EXPECT_THROW(m(0, 2), PanicError);
}

TEST(Matrix, RowSpanWritesThrough)
{
    Matrix m(2, 2);
    auto r = m.row(1);
    r[0] = 7.0;
    EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(Matrix, ColExtraction)
{
    Matrix m = {{1, 2}, {3, 4}, {5, 6}};
    const auto c = m.col(1);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_DOUBLE_EQ(c[0], 2.0);
    EXPECT_DOUBLE_EQ(c[2], 6.0);
}

TEST(Matrix, ApplyMatchesManual)
{
    Matrix m = {{1, 2}, {3, 4}};
    std::vector<double> x = {5, 6};
    const auto y = m.apply(x);
    EXPECT_DOUBLE_EQ(y[0], 17.0);
    EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Matrix, MultiplyMatchesManual)
{
    Matrix a = {{1, 2}, {3, 4}};
    Matrix b = {{5, 6}, {7, 8}};
    const Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchPanics)
{
    Matrix a(2, 3), b(2, 2);
    EXPECT_THROW(a.multiply(b), PanicError);
}

TEST(Matrix, TransposeRoundTrip)
{
    Matrix a = {{1, 2, 3}, {4, 5, 6}};
    const Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_DOUBLE_EQ(t.transposed().maxAbsDiff(a), 0.0);
}

TEST(Matrix, IdentityMultiplication)
{
    Matrix a = {{1, 2}, {3, 4}};
    const Matrix i = Matrix::identity(2);
    EXPECT_DOUBLE_EQ(a.multiply(i).maxAbsDiff(a), 0.0);
    EXPECT_DOUBLE_EQ(i.multiply(a).maxAbsDiff(a), 0.0);
}

TEST(Matrix, MaxAbsDiff)
{
    Matrix a = {{1, 2}, {3, 4}};
    Matrix b = {{1, 2}, {3, 4.5}};
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(b), 0.5);
}

} // namespace
} // namespace hwsw::stats
