// Tests for the genetic search over model specifications.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"

#include "core/genetic.hpp"

namespace hwsw::core {
namespace {

/**
 * Synthetic two-app dataset whose ground truth needs a specific
 * interaction, so search quality is observable.
 */
Dataset
gaData(std::size_t per_app, std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"alpha", "beta"}) {
        const double base = app[0] == 'a' ? 1.0 : 2.0;
        for (std::size_t i = 0; i < per_app; ++i) {
            ProfileRecord r;
            r.app = app;
            r.vars[6] = rng.nextUniform(0.1, 0.6);
            r.vars[7] = rng.nextUniform(10, 1000);
            r.vars[kNumSw] = 1 << rng.nextInt(4);
            r.vars[kNumSw + 4] = 16 << rng.nextInt(4);
            r.perf = base + 2.0 * r.vars[6] + 3.0 / r.vars[kNumSw] +
                0.3 * std::sqrt(r.vars[7]) * 16.0 /
                    r.vars[kNumSw + 4];
            ds.add(r);
        }
    }
    return ds;
}

GaOptions
smallOpts()
{
    GaOptions o;
    o.populationSize = 12;
    o.generations = 6;
    o.numThreads = 1;
    o.seed = 99;
    return o;
}

TEST(GeneticSearch, FitnessImprovesOverGenerations)
{
    GeneticSearch search(gaData(80, 1), smallOpts());
    const GaResult result = search.run();
    ASSERT_EQ(result.history.size(), 6u);
    EXPECT_LE(result.history.back().bestFitness,
              result.history.front().bestFitness);
    EXPECT_GT(result.best.fitness, 0.0);
}

TEST(GeneticSearch, BestFitnessNeverRegresses)
{
    // With elitism the best model survives: best fitness is
    // monotone non-increasing across generations.
    GeneticSearch search(gaData(60, 2), smallOpts());
    const GaResult result = search.run();
    for (std::size_t g = 1; g < result.history.size(); ++g)
        EXPECT_LE(result.history[g].bestFitness,
                  result.history[g - 1].bestFitness + 1e-12);
}

TEST(GeneticSearch, DeterministicForFixedSeed)
{
    const Dataset data = gaData(50, 3);
    GeneticSearch a(data, smallOpts());
    GeneticSearch b(data, smallOpts());
    const GaResult ra = a.run();
    const GaResult rb = b.run();
    EXPECT_EQ(ra.best.spec, rb.best.spec);
    EXPECT_DOUBLE_EQ(ra.best.fitness, rb.best.fitness);
}

TEST(GeneticSearch, PopulationSortedByFitness)
{
    GeneticSearch search(gaData(50, 4), smallOpts());
    const GaResult result = search.run();
    ASSERT_EQ(result.population.size(), 12u);
    for (std::size_t i = 1; i < result.population.size(); ++i)
        EXPECT_GE(result.population[i].fitness,
                  result.population[i - 1].fitness);
    EXPECT_EQ(result.best.spec, result.population.front().spec);
}

TEST(GeneticSearch, WarmStartSeedsPopulation)
{
    const Dataset data = gaData(60, 5);
    GaOptions opts = smallOpts();
    GeneticSearch search(data, opts);
    const GaResult first = search.run();

    // Seeding with the converged best must start at least as good as
    // the seed itself on the same folds.
    std::vector<ModelSpec> seeds = {first.best.spec};
    GaOptions short_opts = opts;
    short_opts.generations = 2;
    GeneticSearch warm(data, short_opts);
    const GaResult second = warm.run(seeds);
    EXPECT_LE(second.history.front().bestFitness,
              first.best.fitness + 1e-9);
}

TEST(GeneticSearch, EvaluateMatchesReportedFitness)
{
    const Dataset data = gaData(50, 6);
    GeneticSearch search(data, smallOpts());
    const GaResult result = search.run();
    const auto [fitness, sum_err] = search.evaluate(result.best.spec);
    EXPECT_NEAR(fitness, result.best.fitness, 1e-12);
    EXPECT_NEAR(sum_err, result.best.sumMedianError, 1e-12);
}

TEST(GeneticSearch, FoldPerApplication)
{
    GeneticSearch search(gaData(40, 7), smallOpts());
    EXPECT_EQ(search.numFolds(), 2u);
}

TEST(GeneticSearch, ParallelEvaluationMatchesSerial)
{
    const Dataset data = gaData(40, 8);
    GaOptions serial = smallOpts();
    GaOptions parallel = smallOpts();
    parallel.numThreads = 4;
    const GaResult rs = GeneticSearch(data, serial).run();
    const GaResult rp = GeneticSearch(data, parallel).run();
    EXPECT_EQ(rs.best.spec, rp.best.spec);
    EXPECT_DOUBLE_EQ(rs.best.fitness, rp.best.fitness);
}

TEST(GeneticSearch, ComplexityPenaltyPrunesModels)
{
    // With a huge complexity penalty the search must prefer small
    // models.
    GaOptions opts = smallOpts();
    opts.complexityPenalty = 0.05;
    GeneticSearch search(gaData(60, 9), opts);
    const GaResult result = search.run();
    std::size_t cols = 1;
    for (std::size_t v = 0; v < kNumVars; ++v)
        cols += geneColumnCount(result.best.spec.tx(v));
    cols += result.best.spec.interactions.size();
    EXPECT_LT(cols, 30u);
}

TEST(GeneticSearch, HoldOutFitnessExcludesHeldApp)
{
    // Two apps occupy disjoint feature regions with different
    // performance levels. A spline model fitted WITH the held app's
    // training slice nails both regions; hold-out folds never see the
    // held region and must extrapolate, which shows up as much larger
    // fold error.
    Dataset ds;
    Rng rng(31);
    for (const char *app : {"alpha", "beta"}) {
        const bool is_alpha = app[0] == 'a';
        for (int i = 0; i < 60; ++i) {
            ProfileRecord r;
            r.app = app;
            r.vars[6] = is_alpha ? rng.nextUniform(0.0, 0.4)
                                 : rng.nextUniform(0.6, 1.0);
            r.perf = is_alpha ? 1.0 : 3.0;
            ds.add(r);
        }
    }
    GaOptions inter = smallOpts();
    GaOptions holdout = smallOpts();
    holdout.holdOutFitness = true;

    ModelSpec spec;
    spec.genes[6] = 4; // spline: can represent both levels
    const auto [fit_inter, e1] =
        GeneticSearch(ds, inter).evaluate(spec);
    const auto [fit_hold, e2] =
        GeneticSearch(ds, holdout).evaluate(spec);
    EXPECT_LT(fit_inter, 0.1);
    EXPECT_GT(fit_hold, 3.0 * fit_inter);
}

TEST(GeneticSearch, RejectsDegenerateOptions)
{
    const Dataset data = gaData(20, 10);
    GaOptions bad = smallOpts();
    bad.populationSize = 2;
    EXPECT_THROW(GeneticSearch(data, bad), FatalError);
    bad = smallOpts();
    bad.eliteFrac = 1.5;
    EXPECT_THROW(GeneticSearch(data, bad), FatalError);
    Dataset empty;
    EXPECT_THROW(GeneticSearch(empty, smallOpts()), FatalError);
}

} // namespace
} // namespace hwsw::core
