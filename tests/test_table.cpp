// Unit tests for console report helpers.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "common/table.hpp"

namespace hwsw {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    const std::string out = t.render();
    // Header separator present, all cells present.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Every line before padding trim ends with the same column.
    const auto lines = [&] {
        std::vector<std::string> ls;
        std::size_t pos = 0;
        while (pos < out.size()) {
            const std::size_t nl = out.find('\n', pos);
            ls.push_back(out.substr(pos, nl - pos));
            pos = nl + 1;
        }
        return ls;
    }();
    ASSERT_GE(lines.size(), 4u);
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 3), "3.14");
    EXPECT_EQ(TextTable::num(1000.0, 4), "1000");
}

TEST(TextTable, PctFormatting)
{
    EXPECT_EQ(TextTable::pct(0.083), "8.3%");
    EXPECT_EQ(TextTable::pct(0.5, 0), "50%");
}

TEST(TextTable, RaggedRowsDoNotCrash)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"only-one"});
    EXPECT_FALSE(t.render().empty());
}

TEST(Boxplot, MarksMedianAndWhiskers)
{
    std::vector<double> xs = {0.0, 0.25, 0.5, 0.75, 1.0};
    const std::string line = renderBoxplot("demo", xs, 0.0, 1.0, 41);
    EXPECT_NE(line.find('M'), std::string::npos);
    EXPECT_NE(line.find('|'), std::string::npos);
    EXPECT_NE(line.find('='), std::string::npos);
    EXPECT_NE(line.find("demo"), std::string::npos);
    EXPECT_NE(line.find("med=50.0%"), std::string::npos);
}

TEST(Boxplot, RejectsEmptyScale)
{
    std::vector<double> xs = {0.5};
    EXPECT_THROW(renderBoxplot("x", xs, 1.0, 1.0), PanicError);
}

} // namespace
} // namespace hwsw
