// Tests for the ModelManager update loop (Sections 3.2-3.3).
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <algorithm>
#include <cmath>

#include "core/manager.hpp"

namespace hwsw::core {
namespace {

/**
 * Ground truth: performance depends on a software characteristic
 * (x2, taken-branch fraction analog), memory fraction, and width.
 * Applications differ through their x2 band, so a re-specified model
 * can actually distinguish a behaviorally novel application.
 */
double
truthPerf(double taken, double mem, double width)
{
    return 0.5 + 4.0 * taken + 2.0 * mem + 3.0 / width;
}

ProfileRecord
sample(const std::string &app, Rng &rng, double taken_band)
{
    ProfileRecord r;
    r.app = app;
    r.vars[1] = taken_band + rng.nextUniform(0.0, 0.1); // x2 band
    r.vars[6] = rng.nextUniform(0.1, 0.6);
    r.vars[kNumSw] = 1 << rng.nextInt(4);
    r.perf = truthPerf(r.vars[1], r.vars[6], r.vars[kNumSw]);
    return r;
}

Dataset
bootData(std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"a1", "a2"})
        for (int i = 0; i < 60; ++i)
            ds.add(sample(app, rng, app[1] == '1' ? 0.05 : 0.15));
    return ds;
}

GaOptions
gaOpts()
{
    GaOptions o;
    o.populationSize = 10;
    o.generations = 4;
    o.numThreads = 1;
    o.seed = 5;
    return o;
}

ManagerOptions
mgrOpts()
{
    ManagerOptions o;
    o.profilesForUpdate = 6;
    o.updateGenerations = 6;
    o.newAppWeight = 6.0;
    return o;
}

TEST(ModelManager, BootstrapProducesModel)
{
    ModelManager mgr(bootData(1), gaOpts(), mgrOpts());
    EXPECT_FALSE(mgr.ready());
    mgr.bootstrapModel();
    EXPECT_TRUE(mgr.ready());
    EXPECT_GT(mgr.steadyMedianError(), 0.0);
    EXPECT_LT(mgr.steadyMedianError(), 0.5);
}

TEST(ModelManager, ObserveBeforeBootstrapPanics)
{
    ModelManager mgr(bootData(2), gaOpts(), mgrOpts());
    ProfileRecord r;
    r.perf = 1.0;
    EXPECT_THROW(mgr.observe(r), PanicError);
}

TEST(ModelManager, SimilarApplicationIsAbsorbed)
{
    // A new application sharing the bias of the bootstrap apps is
    // predicted in-band: Consistent, no update.
    ModelManager mgr(bootData(3), gaOpts(), mgrOpts());
    mgr.bootstrapModel();
    Rng rng(33);
    const std::size_t before = mgr.store().size();
    int consistent = 0;
    for (int i = 0; i < 10; ++i) {
        if (mgr.observe(sample("similar", rng, 0.1)) ==
            Observation::Consistent) {
            ++consistent;
        }
    }
    EXPECT_GE(consistent, 7);
    EXPECT_EQ(mgr.updateCount(), 0u);
    EXPECT_GT(mgr.store().size(), before);
}

TEST(ModelManager, NovelApplicationTriggersUpdate)
{
    // A new application with a very different performance level:
    // out-of-band predictions accumulate, then trigger an update.
    ModelManager mgr(bootData(4), gaOpts(), mgrOpts());
    mgr.bootstrapModel();
    Rng rng(44);
    bool updated = false;
    int need_more = 0;
    for (int i = 0; i < 20 && !updated; ++i) {
        const Observation obs = mgr.observe(sample("novel", rng, 0.9));
        if (obs == Observation::NeedMoreProfiles)
            ++need_more;
        if (obs == Observation::Updated)
            updated = true;
    }
    EXPECT_TRUE(updated);
    // Hysteresis: several NeedMoreProfiles before the update fired.
    EXPECT_GE(need_more, 4);
    EXPECT_EQ(mgr.updateCount(), 1u);

    // After the update, the novel application mostly predicts
    // in-band (the short update search cannot always nail the new
    // region immediately; the paper's hysteresis tolerates this).
    int consistent = 0;
    for (int i = 0; i < 10; ++i) {
        if (mgr.observe(sample("novel", rng, 0.9)) ==
            Observation::Consistent) {
            ++consistent;
        }
    }
    EXPECT_GE(consistent, 5);
}

TEST(ModelManager, UpdateImprovesNovelAppAccuracy)
{
    ModelManager mgr(bootData(5), gaOpts(), mgrOpts());
    mgr.bootstrapModel();
    Rng rng(55);

    // Measure pre-update error on held-out novel samples.
    std::vector<ProfileRecord> held;
    for (int i = 0; i < 30; ++i)
        held.push_back(sample("novel", rng, 0.9));
    auto median_err = [&] {
        std::vector<double> errs;
        for (const auto &r : held) {
            errs.push_back(std::abs(mgr.model().predict(r) - r.perf) /
                           r.perf);
        }
        std::sort(errs.begin(), errs.end());
        return errs[errs.size() / 2];
    };
    const double before = median_err();

    for (int i = 0; i < 20 && mgr.updateCount() == 0; ++i)
        mgr.observe(sample("novel", rng, 0.9));
    ASSERT_EQ(mgr.updateCount(), 1u);
    const double after = median_err();
    EXPECT_LT(after, before * 0.5);
}

TEST(ModelManager, PeriodicRefitTracksDrift)
{
    // A stream of in-band profiles from a slightly shifted variant
    // must eventually improve the fit through coefficient refits,
    // without a single re-specification.
    ModelManager mgr(bootData(7), gaOpts(), [] {
        ManagerOptions o = mgrOpts();
        o.refitInterval = 10;
        o.errorBandFactor = 10.0; // everything absorbed
        return o;
    }());
    mgr.bootstrapModel();
    Rng rng(66);
    const std::size_t before = mgr.store().size();
    for (int i = 0; i < 25; ++i)
        mgr.observe(sample("drift", rng, 0.3));
    EXPECT_EQ(mgr.updateCount(), 0u);
    EXPECT_EQ(mgr.store().size(), before + 25);
    // After two refits the drifting app predicts well.
    std::vector<double> errs;
    for (int i = 0; i < 20; ++i) {
        const auto r = sample("drift", rng, 0.3);
        errs.push_back(std::abs(mgr.model().predict(r) - r.perf) /
                       r.perf);
    }
    std::sort(errs.begin(), errs.end());
    EXPECT_LT(errs[errs.size() / 2], 0.15);
}

TEST(ModelManager, RejectsDegenerateOptions)
{
    ManagerOptions bad = mgrOpts();
    bad.profilesForUpdate = 1;
    EXPECT_THROW(ModelManager(bootData(6), gaOpts(), bad), FatalError);
    Dataset empty;
    EXPECT_THROW(ModelManager(empty, gaOpts(), mgrOpts()), FatalError);
}

} // namespace
} // namespace hwsw::core
