// Tests for the ModelManager update loop (Sections 3.2-3.3).
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/manager.hpp"
#include "core/serialize.hpp"

namespace hwsw::core {
namespace {

/**
 * Ground truth: performance depends on a software characteristic
 * (x2, taken-branch fraction analog), memory fraction, and width.
 * Applications differ through their x2 band, so a re-specified model
 * can actually distinguish a behaviorally novel application.
 */
double
truthPerf(double taken, double mem, double width)
{
    return 0.5 + 4.0 * taken + 2.0 * mem + 3.0 / width;
}

ProfileRecord
sample(const std::string &app, Rng &rng, double taken_band)
{
    ProfileRecord r;
    r.app = app;
    r.vars[1] = taken_band + rng.nextUniform(0.0, 0.1); // x2 band
    r.vars[6] = rng.nextUniform(0.1, 0.6);
    r.vars[kNumSw] = 1 << rng.nextInt(4);
    r.perf = truthPerf(r.vars[1], r.vars[6], r.vars[kNumSw]);
    return r;
}

Dataset
bootData(std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (const char *app : {"a1", "a2"})
        for (int i = 0; i < 60; ++i)
            ds.add(sample(app, rng, app[1] == '1' ? 0.05 : 0.15));
    return ds;
}

GaOptions
gaOpts()
{
    GaOptions o;
    o.populationSize = 10;
    o.generations = 4;
    o.numThreads = 1;
    o.seed = 5;
    return o;
}

ManagerOptions
mgrOpts()
{
    ManagerOptions o;
    o.profilesForUpdate = 6;
    o.updateGenerations = 6;
    o.newAppWeight = 6.0;
    return o;
}

TEST(ModelManager, BootstrapProducesModel)
{
    ModelManager mgr(bootData(1), gaOpts(), mgrOpts());
    EXPECT_FALSE(mgr.ready());
    mgr.bootstrapModel();
    EXPECT_TRUE(mgr.ready());
    EXPECT_GT(mgr.steadyMedianError(), 0.0);
    EXPECT_LT(mgr.steadyMedianError(), 0.5);
}

TEST(ModelManager, ObserveBeforeBootstrapPanics)
{
    ModelManager mgr(bootData(2), gaOpts(), mgrOpts());
    ProfileRecord r;
    r.perf = 1.0;
    EXPECT_THROW(mgr.observe(r), PanicError);
}

TEST(ModelManager, SimilarApplicationIsAbsorbed)
{
    // A new application sharing the bias of the bootstrap apps is
    // predicted in-band: Consistent, no update.
    ModelManager mgr(bootData(3), gaOpts(), mgrOpts());
    mgr.bootstrapModel();
    Rng rng(33);
    const std::size_t before = mgr.store().size();
    int consistent = 0;
    for (int i = 0; i < 10; ++i) {
        if (mgr.observe(sample("similar", rng, 0.1)) ==
            Observation::Consistent) {
            ++consistent;
        }
    }
    EXPECT_GE(consistent, 7);
    EXPECT_EQ(mgr.updateCount(), 0u);
    EXPECT_GT(mgr.store().size(), before);
}

TEST(ModelManager, NovelApplicationTriggersUpdate)
{
    // A new application with a very different performance level:
    // out-of-band predictions accumulate, then trigger an update.
    ModelManager mgr(bootData(4), gaOpts(), mgrOpts());
    mgr.bootstrapModel();
    Rng rng(44);
    bool updated = false;
    int need_more = 0;
    for (int i = 0; i < 20 && !updated; ++i) {
        const Observation obs = mgr.observe(sample("novel", rng, 0.9));
        if (obs == Observation::NeedMoreProfiles)
            ++need_more;
        if (obs == Observation::Updated)
            updated = true;
    }
    EXPECT_TRUE(updated);
    // Hysteresis: several NeedMoreProfiles before the update fired.
    EXPECT_GE(need_more, 4);
    EXPECT_EQ(mgr.updateCount(), 1u);

    // After the update, the novel application mostly predicts
    // in-band (the short update search cannot always nail the new
    // region immediately; the paper's hysteresis tolerates this).
    int consistent = 0;
    for (int i = 0; i < 10; ++i) {
        if (mgr.observe(sample("novel", rng, 0.9)) ==
            Observation::Consistent) {
            ++consistent;
        }
    }
    EXPECT_GE(consistent, 5);
}

TEST(ModelManager, UpdateImprovesNovelAppAccuracy)
{
    ModelManager mgr(bootData(5), gaOpts(), mgrOpts());
    mgr.bootstrapModel();
    Rng rng(55);

    // Measure pre-update error on held-out novel samples.
    std::vector<ProfileRecord> held;
    for (int i = 0; i < 30; ++i)
        held.push_back(sample("novel", rng, 0.9));
    auto median_err = [&] {
        std::vector<double> errs;
        for (const auto &r : held) {
            errs.push_back(std::abs(mgr.model().predict(r) - r.perf) /
                           r.perf);
        }
        std::sort(errs.begin(), errs.end());
        return errs[errs.size() / 2];
    };
    const double before = median_err();

    for (int i = 0; i < 20 && mgr.updateCount() == 0; ++i)
        mgr.observe(sample("novel", rng, 0.9));
    ASSERT_EQ(mgr.updateCount(), 1u);
    const double after = median_err();
    EXPECT_LT(after, before * 0.5);
}

TEST(ModelManager, PeriodicRefitTracksDrift)
{
    // A stream of in-band profiles from a slightly shifted variant
    // must eventually improve the fit through coefficient refits,
    // without a single re-specification.
    ModelManager mgr(bootData(7), gaOpts(), [] {
        ManagerOptions o = mgrOpts();
        o.refitInterval = 10;
        o.errorBandFactor = 10.0; // everything absorbed
        return o;
    }());
    mgr.bootstrapModel();
    Rng rng(66);
    const std::size_t before = mgr.store().size();
    for (int i = 0; i < 25; ++i)
        mgr.observe(sample("drift", rng, 0.3));
    EXPECT_EQ(mgr.updateCount(), 0u);
    EXPECT_EQ(mgr.store().size(), before + 25);
    // After two refits the drifting app predicts well.
    std::vector<double> errs;
    for (int i = 0; i < 20; ++i) {
        const auto r = sample("drift", rng, 0.3);
        errs.push_back(std::abs(mgr.model().predict(r) - r.perf) /
                       r.perf);
    }
    std::sort(errs.begin(), errs.end());
    EXPECT_LT(errs[errs.size() / 2], 0.15);
}

TEST(ModelManager, StateRoundTripContinuesIdentically)
{
    // The dynamic state is a pure function of the observation
    // sequence, so a manager restored from saved state must be
    // indistinguishable from one that lived through the sequence —
    // including for everything it observes afterwards. This is the
    // property updater snapshots (journal compaction) rest on.
    const Dataset boot = bootData(9);
    ModelManager a(boot, gaOpts(), mgrOpts());
    a.bootstrapModel();

    Rng rng(77);
    std::vector<ProfileRecord> first, second;
    for (int i = 0; i < 8; ++i)
        first.push_back(sample("novel", rng, 0.9));
    for (int i = 0; i < 8; ++i)
        second.push_back(sample("novel2", rng, 1.8));

    for (const auto &r : first)
        a.observe(r);
    ASSERT_GE(a.updateCount(), 1u);

    // "Restart": dump a's state into a fresh manager that never ran
    // the bootstrap search.
    const std::string state = a.saveStateToString();
    ModelManager b(boot, gaOpts(), mgrOpts());
    EXPECT_FALSE(b.ready());
    b.restoreStateFromString(state);
    ASSERT_TRUE(b.ready());
    EXPECT_EQ(b.updateCount(), a.updateCount());
    EXPECT_EQ(b.store().size(), a.store().size());
    EXPECT_EQ(b.steadyMedianError(), a.steadyMedianError());
    EXPECT_EQ(saveModelToString(b.model()),
              saveModelToString(a.model()));

    // The continuation — which triggers another re-specification —
    // diverges in nothing, observation by observation.
    for (const auto &r : second)
        EXPECT_EQ(b.observe(r), a.observe(r));
    EXPECT_GE(a.updateCount(), 2u);
    EXPECT_EQ(b.updateCount(), a.updateCount());
    EXPECT_EQ(b.store().size(), a.store().size());
    EXPECT_EQ(saveModelToString(b.model()),
              saveModelToString(a.model()));
}

TEST(ModelManager, RestoreRejectsMalformedState)
{
    ModelManager mgr(bootData(9), gaOpts(), mgrOpts());
    mgr.bootstrapModel();
    const std::string state = mgr.saveStateToString();

    ModelManager fresh(bootData(9), gaOpts(), mgrOpts());
    EXPECT_THROW(fresh.restoreStateFromString("garbage"), FatalError);
    EXPECT_THROW(fresh.restoreStateFromString(
                     state.substr(0, state.size() / 2)),
                 FatalError);
    // A failed restore must not leave the manager half-built.
    EXPECT_FALSE(fresh.ready());

    // And a failed restore into a live manager keeps the old state.
    const std::string before = mgr.saveStateToString();
    EXPECT_THROW(mgr.restoreStateFromString(
                     state.substr(0, state.size() / 2)),
                 FatalError);
    EXPECT_EQ(mgr.saveStateToString(), before);

    fresh.restoreStateFromString(state);
    EXPECT_TRUE(fresh.ready());
}

TEST(ModelManager, SaveStateBeforeBootstrapThrows)
{
    ModelManager mgr(bootData(9), gaOpts(), mgrOpts());
    EXPECT_THROW(mgr.saveStateToString(), FatalError);
}

TEST(ModelManager, RejectsDegenerateOptions)
{
    ManagerOptions bad = mgrOpts();
    bad.profilesForUpdate = 1;
    EXPECT_THROW(ModelManager(bootData(6), gaOpts(), bad), FatalError);
    Dataset empty;
    EXPECT_THROW(ModelManager(empty, gaOpts(), mgrOpts()), FatalError);
}

} // namespace
} // namespace hwsw::core
