// Unit tests for BCSR, including the exact Figure 11 example.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "common/rng.hpp"
#include "spmv/bcsr.hpp"

namespace hwsw::spmv {
namespace {

/** The 4x6 matrix of Figure 11. */
CsrMatrix
figure11Matrix()
{
    // A = [ a00 a01  0   0   0   0
    //       a10 a11  0   0  a14 a15
    //        0   0  a22  0  a24 a25
    //        0   0   0  a33 a34 a35 ]
    // Distinct values encode their position: value(r,c) = 10r + c + 1.
    auto v = [](int r, int c) { return 10.0 * r + c + 1.0; };
    return CsrMatrix(4, 6,
                     {{0, 0, v(0, 0)}, {0, 1, v(0, 1)},
                      {1, 0, v(1, 0)}, {1, 1, v(1, 1)},
                      {1, 4, v(1, 4)}, {1, 5, v(1, 5)},
                      {2, 2, v(2, 2)}, {2, 4, v(2, 4)},
                      {2, 5, v(2, 5)}, {3, 3, v(3, 3)},
                      {3, 4, v(3, 4)}, {3, 5, v(3, 5)}});
}

TEST(Bcsr, Figure11Layout)
{
    const CsrMatrix csr = figure11Matrix();
    const BcsrMatrix m = BcsrMatrix::fromCsr(csr, 2, 2);

    // b_row_start = (0 2 4): block row 0 has 2 blocks, row 1 has 2.
    ASSERT_EQ(m.rowStart().size(), 3u);
    EXPECT_EQ(m.rowStart()[0], 0u);
    EXPECT_EQ(m.rowStart()[1], 2u);
    EXPECT_EQ(m.rowStart()[2], 4u);

    // b_col_idx = (0 4 2 4): first column of each stored block.
    ASSERT_EQ(m.colIdx().size(), 4u);
    EXPECT_EQ(m.colIdx()[0], 0);
    EXPECT_EQ(m.colIdx()[1], 4);
    EXPECT_EQ(m.colIdx()[2], 2);
    EXPECT_EQ(m.colIdx()[3], 4);

    // b_value, row-major within 2x2 blocks:
    // (a00 a01 a10 a11 | 0 0 a14 a15 | a22 0 0 a33 | a24 a25 a34 a35)
    auto v = [](int r, int c) { return 10.0 * r + c + 1.0; };
    const std::vector<double> expect = {
        v(0, 0), v(0, 1), v(1, 0), v(1, 1),
        0.0, 0.0, v(1, 4), v(1, 5),
        v(2, 2), 0.0, 0.0, v(3, 3),
        v(2, 4), v(2, 5), v(3, 4), v(3, 5),
    };
    ASSERT_EQ(m.values().size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_DOUBLE_EQ(m.values()[i], expect[i]) << "index " << i;

    // Four explicit zeros stored: fill ratio 16/12.
    EXPECT_EQ(m.storedValues(), 16u);
    EXPECT_EQ(m.originalNnz(), 12u);
    EXPECT_NEAR(m.fillRatio(), 16.0 / 12.0, 1e-12);
}

TEST(Bcsr, Fill11IsAlwaysOne)
{
    const CsrMatrix csr = figure11Matrix();
    const BcsrMatrix m = BcsrMatrix::fromCsr(csr, 1, 1);
    EXPECT_DOUBLE_EQ(m.fillRatio(), 1.0);
    EXPECT_EQ(m.numBlocks(), csr.nnz());
}

TEST(Bcsr, MultiplyMatchesCsrForAllBlockSizes)
{
    Rng rng(7);
    // Random 20x20 sparse matrix; every block size 1..8 x 1..8 must
    // produce the same product as CSR (property sweep).
    std::vector<Triplet> entries;
    for (int k = 0; k < 90; ++k) {
        entries.push_back({static_cast<std::int32_t>(rng.nextInt(20)),
                           static_cast<std::int32_t>(rng.nextInt(20)),
                           rng.nextUniform(0.5, 2.0)});
    }
    const CsrMatrix csr(20, 20, entries);
    std::vector<double> x(20);
    for (auto &v : x)
        v = rng.nextUniform(-1, 1);
    const auto want = csr.multiply(x);

    for (std::int32_t br = 1; br <= 8; ++br) {
        for (std::int32_t bc = 1; bc <= 8; ++bc) {
            const BcsrMatrix m = BcsrMatrix::fromCsr(csr, br, bc);
            const auto got = m.multiply(x);
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t i = 0; i < want.size(); ++i) {
                ASSERT_NEAR(got[i], want[i], 1e-10)
                    << br << "x" << bc << " row " << i;
            }
        }
    }
}

TEST(Bcsr, NonDividingDimensions)
{
    // 5x7 matrix with 3x2 blocks: ragged edge blocks must work.
    Rng rng(9);
    std::vector<Triplet> entries;
    for (int k = 0; k < 20; ++k) {
        entries.push_back({static_cast<std::int32_t>(rng.nextInt(5)),
                           static_cast<std::int32_t>(rng.nextInt(7)),
                           1.0});
    }
    const CsrMatrix csr(5, 7, entries);
    const BcsrMatrix m = BcsrMatrix::fromCsr(csr, 3, 2);
    std::vector<double> x(7, 1.0);
    const auto want = csr.multiply(x);
    const auto got = m.multiply(x);
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-12);
    EXPECT_EQ(m.numBlockRows(), 2);
}

TEST(Bcsr, FillRatioGrowsWithBlockSizeOnScatteredMatrix)
{
    // Scattered entries: bigger blocks need more padding.
    Rng rng(11);
    std::vector<Triplet> entries;
    for (int k = 0; k < 60; ++k) {
        entries.push_back({static_cast<std::int32_t>(rng.nextInt(48)),
                           static_cast<std::int32_t>(rng.nextInt(48)),
                           1.0});
    }
    const CsrMatrix csr(48, 48, entries);
    EXPECT_DOUBLE_EQ(fillRatio(csr, 1, 1), 1.0);
    EXPECT_GT(fillRatio(csr, 4, 4), 2.0);
    EXPECT_GE(fillRatio(csr, 8, 8), fillRatio(csr, 4, 4) * 0.9);
}

TEST(Bcsr, FillRatioFunctionMatchesMaterialized)
{
    const CsrMatrix csr = figure11Matrix();
    for (std::int32_t br = 1; br <= 4; ++br) {
        for (std::int32_t bc = 1; bc <= 4; ++bc) {
            const BcsrMatrix m = BcsrMatrix::fromCsr(csr, br, bc);
            EXPECT_NEAR(fillRatio(csr, br, bc), m.fillRatio(), 1e-12);
        }
    }
}

TEST(Bcsr, StructureMatchesMatrix)
{
    const CsrMatrix csr = figure11Matrix();
    const BcsrMatrix m = BcsrMatrix::fromCsr(csr, 2, 2);
    const BcsrStructure s = BcsrStructure::fromCsr(csr, 2, 2);
    EXPECT_EQ(s.numBlocks(), m.numBlocks());
    EXPECT_EQ(s.storedValues(), m.storedValues());
    EXPECT_NEAR(s.fillRatio(), m.fillRatio(), 1e-12);
    ASSERT_EQ(s.rowStart.size(), m.rowStart().size());
    for (std::size_t i = 0; i < s.rowStart.size(); ++i)
        EXPECT_EQ(s.rowStart[i], m.rowStart()[i]);
    ASSERT_EQ(s.colIdx.size(), m.colIdx().size());
    for (std::size_t i = 0; i < s.colIdx.size(); ++i)
        EXPECT_EQ(s.colIdx[i], m.colIdx()[i]);
}

TEST(Bcsr, RejectsBadBlockDims)
{
    const CsrMatrix csr = figure11Matrix();
    EXPECT_THROW(BcsrMatrix::fromCsr(csr, 0, 1), FatalError);
    EXPECT_THROW(BcsrMatrix::fromCsr(csr, 1, 17), FatalError);
    EXPECT_THROW(fillRatio(csr, -1, 2), FatalError);
}

} // namespace
} // namespace hwsw::spmv
