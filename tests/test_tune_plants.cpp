// Synthetic-plant contracts the closed tuning loop depends on: polls
// are pure functions of the poll index (so fastForward() is exact),
// candidateRecord() is pure in (candidate, latest observation), the
// scripted drift swaps the workload at exactly driftAt, and the
// tune.poll.fail fault point skips a poll without consuming any
// generator state. Part of the tier15_tune aggregate.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/fault/fault.hpp"
#include "tune/spmv_plant.hpp"
#include "tune/telemetry.hpp"
#include "tune/uarch_plant.hpp"

namespace hwsw::tune {
namespace {

void
expectRecordsEqual(const core::ProfileRecord &a,
                   const core::ProfileRecord &b, const char *what)
{
    EXPECT_EQ(a.app, b.app) << what;
    EXPECT_EQ(a.shardIndex, b.shardIndex) << what;
    for (std::size_t v = 0; v < core::kNumVars; ++v)
        EXPECT_EQ(a.vars[v], b.vars[v]) << what << " var " << v;
    EXPECT_EQ(a.perf, b.perf) << what;
}

class TunePlant : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        fault::FaultRegistry::instance().reset();
        fault::FaultRegistry::instance().setEnabled(false);
    }
    void TearDown() override
    {
        fault::FaultRegistry::instance().reset();
        fault::FaultRegistry::instance().setEnabled(false);
    }

    static SpmvPlantOptions smallSpmv(std::size_t drift_at)
    {
        SpmvPlantOptions o;
        o.scale = 0.02;
        o.simAccesses = 20 * 1000;
        o.driftAt = drift_at;
        return o;
    }
};

TEST_F(TunePlant, SpmvPollsAreDeterministic)
{
    SpmvPlant a(smallSpmv(4));
    SpmvPlant b(smallSpmv(4));
    for (int i = 0; i < 8; ++i) {
        const auto ra = a.poll();
        const auto rb = b.poll();
        ASSERT_TRUE(ra && rb);
        expectRecordsEqual(*ra, *rb, "spmv poll");
    }
    EXPECT_FALSE(a.exhausted());
}

TEST_F(TunePlant, SpmvFastForwardMatchesPolling)
{
    SpmvPlant polled(smallSpmv(4));
    SpmvPlant wound(smallSpmv(4));
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(polled.poll());
    wound.fastForward(6);
    EXPECT_EQ(polled.polls(), wound.polls());
    for (int i = 0; i < 3; ++i) {
        const auto ra = polled.poll();
        const auto rb = wound.poll();
        ASSERT_TRUE(ra && rb);
        expectRecordsEqual(*ra, *rb, "post-fastForward poll");
    }
}

TEST_F(TunePlant, SpmvDriftSwapsMatrixAtDriftAt)
{
    SpmvPlant plant(smallSpmv(3));
    for (int i = 0; i < 3; ++i) {
        const auto r = plant.poll();
        ASSERT_TRUE(r);
        EXPECT_EQ(r->app, "raefsky3") << "poll " << i;
    }
    for (int i = 0; i < 3; ++i) {
        const auto r = plant.poll();
        ASSERT_TRUE(r);
        EXPECT_EQ(r->app, "memplus") << "poll " << (3 + i);
    }
}

TEST_F(TunePlant, SpmvCandidateRecordIsPure)
{
    SpmvPlant plant(smallSpmv(4));
    const auto latest = plant.poll();
    ASSERT_TRUE(latest);

    std::vector<core::ProfileRecord> before;
    for (std::size_t i = 0; i < plant.numCandidates(); ++i)
        before.push_back(plant.candidateRecord(i, *latest));

    // Mutate every bit of plant state candidateRecord must ignore.
    for (int i = 0; i < 5; ++i)
        plant.poll();
    plant.actuate(plant.numCandidates() - 1);

    for (std::size_t i = 0; i < plant.numCandidates(); ++i) {
        const auto after = plant.candidateRecord(i, *latest);
        expectRecordsEqual(before[i], after, "candidateRecord");
    }
}

TEST_F(TunePlant, SpmvCandidateRecordCarriesBlockDims)
{
    SpmvPlant plant(smallSpmv(SpmvPlantOptions{}.driftAt));
    const auto latest = plant.poll();
    ASSERT_TRUE(latest);
    for (std::size_t i = 0; i < plant.numCandidates(); ++i) {
        const auto [br, bc] = plant.blockDims(i);
        const auto rec = plant.candidateRecord(i, *latest);
        EXPECT_EQ(rec.vars[0], static_cast<double>(br)) << i;
        EXPECT_EQ(rec.vars[1], static_cast<double>(bc)) << i;
        // The fill ratio is the transferable input: it must track the
        // candidate, not the currently actuated block.
        EXPECT_GE(rec.vars[2], 1.0) << i;
        EXPECT_EQ(rec.app, latest->app) << i;
    }
}

TEST_F(TunePlant, SpmvBootstrapExcludesDriftMatrix)
{
    SpmvPlant plant(smallSpmv(4));
    const core::Dataset ds = plant.bootstrapDataset(1);
    ASSERT_GT(ds.size(), 0u);
    for (const std::string &app : ds.appNames())
        EXPECT_NE(app, "memplus");
    // Every candidate appears in the bootstrap sweep.
    EXPECT_EQ(ds.indicesForApp("raefsky3").size(),
              plant.numCandidates());
}

TEST_F(TunePlant, SpmvPollFailConsumesNoState)
{
    SpmvPlant faulty(smallSpmv(4));
    SpmvPlant clean(smallSpmv(4));

    auto &reg = fault::FaultRegistry::instance();
    reg.setEnabled(true);
    fault::PointConfig cfg;
    cfg.everyNth = 2; // trip every second hit
    reg.arm("tune.poll.fail", cfg);

    std::vector<core::ProfileRecord> got;
    for (int i = 0; i < 12; ++i) {
        if (auto r = faulty.poll())
            got.push_back(*r);
    }
    reg.reset();
    reg.setEnabled(false);
    ASSERT_EQ(got.size(), 6u);
    EXPECT_EQ(faulty.polls(), 6u);

    // The successful polls form exactly the unfaulted prefix.
    for (const auto &rec : got) {
        const auto want = clean.poll();
        ASSERT_TRUE(want);
        expectRecordsEqual(rec, *want, "faulted sequence");
    }
}

TEST_F(TunePlant, UarchPollsDeterministicAndFastForwardable)
{
    UarchPlantOptions o;
    o.driftAt = 5;
    UarchPlant a(o);
    UarchPlant b(o);
    for (int i = 0; i < 4; ++i) {
        const auto ra = a.poll();
        const auto rb = b.poll();
        ASSERT_TRUE(ra && rb);
        expectRecordsEqual(*ra, *rb, "uarch poll");
    }
    b.fastForward(3);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(a.poll());
    const auto ra = a.poll();
    const auto rb = b.poll();
    ASSERT_TRUE(ra && rb);
    expectRecordsEqual(*ra, *rb, "uarch post-fastForward");
}

TEST_F(TunePlant, UarchDriftSwapsAppAtDriftAt)
{
    UarchPlantOptions o;
    o.driftAt = 2;
    UarchPlant plant(o);
    const auto r0 = plant.poll();
    const auto r1 = plant.poll();
    const auto r2 = plant.poll();
    ASSERT_TRUE(r0 && r1 && r2);
    EXPECT_EQ(r0->app, r1->app);
    EXPECT_NE(r2->app, r0->app);
    EXPECT_EQ(r2->app, plant.appForPoll(2).name);
}

TEST_F(TunePlant, UarchCandidateRecordIsPure)
{
    UarchPlantOptions o;
    o.driftAt = 8;
    UarchPlant plant(o);
    const auto latest = plant.poll();
    ASSERT_TRUE(latest);
    const auto before =
        plant.candidateRecord(1, *latest);
    plant.poll();
    plant.actuate(plant.numCandidates() - 1);
    const auto after = plant.candidateRecord(1, *latest);
    expectRecordsEqual(before, after, "uarch candidateRecord");
}

TEST_F(TunePlant, UarchBootstrapExcludesDriftApp)
{
    UarchPlantOptions o;
    o.driftAt = 4;
    UarchPlant plant(o);
    const std::string drift_app = plant.appForPoll(4).name;
    const core::Dataset ds = plant.bootstrapDataset(1);
    ASSERT_GT(ds.size(), 0u);
    for (const std::string &app : ds.appNames())
        EXPECT_NE(app, drift_app);
}

TEST_F(TunePlant, ReplaySourceWalksTraceInOrder)
{
    std::vector<core::ProfileRecord> trace(3);
    trace[0].app = "a";
    trace[0].perf = 1.0;
    trace[1].app = "b";
    trace[1].perf = 2.0;
    trace[2].app = "c";
    trace[2].perf = 3.0;

    ReplayTelemetrySource src(trace);
    EXPECT_EQ(src.size(), 3u);
    EXPECT_FALSE(src.exhausted());

    const auto r0 = src.poll();
    ASSERT_TRUE(r0);
    EXPECT_EQ(r0->app, "a");

    src.fastForward(1); // skip "b"
    const auto r2 = src.poll();
    ASSERT_TRUE(r2);
    EXPECT_EQ(r2->app, "c");

    EXPECT_TRUE(src.exhausted());
    EXPECT_FALSE(src.poll().has_value());
}

TEST_F(TunePlant, ReplaySourceHonorsPollFault)
{
    std::vector<core::ProfileRecord> trace(2);
    trace[0].app = "a";
    trace[1].app = "b";
    ReplayTelemetrySource src(trace);

    auto &reg = fault::FaultRegistry::instance();
    reg.setEnabled(true);
    fault::PointConfig cfg;
    cfg.oneShot = true;
    reg.arm("tune.poll.fail", cfg);

    EXPECT_FALSE(src.poll().has_value()); // tripped, nothing consumed
    reg.setEnabled(false);

    const auto r = src.poll();
    ASSERT_TRUE(r);
    EXPECT_EQ(r->app, "a"); // the failed poll consumed no state
}

} // namespace
} // namespace hwsw::tune
