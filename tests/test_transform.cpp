// Unit tests for variance-stabilizing transformations (Figure 3).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "stats/transform.hpp"

namespace hwsw::stats {
namespace {

TEST(Stabilizer, AppliesKnownFunctions)
{
    EXPECT_DOUBLE_EQ(Stabilizer(Power::Identity).apply(32.0), 32.0);
    EXPECT_DOUBLE_EQ(Stabilizer(Power::Sqrt).apply(16.0), 4.0);
    EXPECT_DOUBLE_EQ(Stabilizer(Power::CubeRoot).apply(27.0), 3.0);
    EXPECT_DOUBLE_EQ(Stabilizer(Power::FourthRoot).apply(16.0), 2.0);
    EXPECT_NEAR(Stabilizer(Power::FifthRoot).apply(32.0), 2.0, 1e-12);
    EXPECT_NEAR(Stabilizer(Power::Log1p).apply(std::exp(1.0) - 1.0),
                1.0, 1e-12);
}

TEST(Stabilizer, ClampsNegativeInput)
{
    EXPECT_DOUBLE_EQ(Stabilizer(Power::Sqrt).apply(-5.0), 0.0);
}

TEST(Stabilizer, Names)
{
    EXPECT_EQ(Stabilizer(Power::FifthRoot).name(), "x^(1/5)");
    EXPECT_EQ(Stabilizer(Power::Identity).name(), "x");
    EXPECT_EQ(Stabilizer(Power::Log1p).name(), "log(1+x)");
}

TEST(ChooseStabilizer, LongTailGetsStrongTransform)
{
    // Re-create the Figure 3 situation: most samples small, a few an
    // order of magnitude larger. The ladder should pick a strong
    // variance-stabilizing rung, and the transformed skewness must be
    // much lower than the raw skewness.
    Rng rng(17);
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) {
        // Log-normal: most mass near 5e4 with outliers an order of
        // magnitude larger, as in Figure 3(a).
        xs.push_back(5e4 * std::exp(rng.nextGaussian() * 1.2));
    }
    const double raw_skew =
        transformedSkewness(xs, Stabilizer(Power::Identity));
    const Stabilizer chosen = chooseStabilizer(xs);
    const double stabilized_skew =
        std::abs(transformedSkewness(xs, chosen));
    EXPECT_GT(raw_skew, 1.0);
    EXPECT_LT(stabilized_skew, std::abs(raw_skew) * 0.5);
    EXPECT_NE(chosen.power(), Power::Identity);
}

TEST(ChooseStabilizer, SymmetricDataKeepsIdentity)
{
    Rng rng(23);
    std::vector<double> xs;
    for (int i = 0; i < 2000; ++i)
        xs.push_back(100.0 + rng.nextGaussian());
    EXPECT_EQ(chooseStabilizer(xs).power(), Power::Identity);
}

TEST(ChooseStabilizer, TinySampleFallsBackToIdentity)
{
    std::vector<double> xs = {1.0, 2.0};
    EXPECT_EQ(chooseStabilizer(xs).power(), Power::Identity);
}

TEST(ChooseStabilizer, MinimizesAbsoluteSkewness)
{
    Rng rng(29);
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i)
        xs.push_back(std::exp(rng.nextGaussian() * 2.0));
    const Stabilizer chosen = chooseStabilizer(xs);
    const double best = std::abs(transformedSkewness(xs, chosen));
    for (Power p : {Power::Identity, Power::Sqrt, Power::CubeRoot,
                    Power::FourthRoot, Power::FifthRoot, Power::Log1p}) {
        EXPECT_LE(best,
                  std::abs(transformedSkewness(xs, Stabilizer(p))) +
                      1e-12);
    }
}

} // namespace
} // namespace hwsw::stats
