// Unit tests for the functional set-associative cache simulator.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "common/rng.hpp"
#include "uarch/cache.hpp"

namespace hwsw::uarch {
namespace {

CacheConfig
cfg(std::uint64_t size, std::uint32_t line, std::uint32_t ways,
    ReplPolicy repl = ReplPolicy::LRU)
{
    return CacheConfig{size, line, ways, repl};
}

TEST(Cache, HitAfterFill)
{
    Cache c(cfg(1024, 64, 2));
    EXPECT_FALSE(c.access(0x100)); // cold miss
    EXPECT_TRUE(c.access(0x100));  // hit
    EXPECT_TRUE(c.access(0x13f)); // same 64B line
    EXPECT_FALSE(c.access(0x140)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, GeometryValidation)
{
    EXPECT_THROW(Cache(cfg(1024, 48, 2)), FatalError);  // line not 2^k
    EXPECT_THROW(Cache(cfg(64, 64, 2)), FatalError);    // too small
    EXPECT_THROW(Cache(cfg(1024, 64, 0)), FatalError);  // zero ways
    EXPECT_THROW(Cache(cfg(1024 + 64, 64, 1)), FatalError); // sets!=2^k
}

TEST(Cache, NumSets)
{
    Cache c(cfg(8192, 64, 4));
    EXPECT_EQ(c.numSets(), 32u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // Direct-mapped-by-set: 2 sets, 2 ways, 64B lines = 256B cache.
    Cache c(cfg(256, 64, 2));
    // Three blocks mapping to set 0: 0x000, 0x100, 0x200.
    c.access(0x000);
    c.access(0x100);
    c.access(0x000); // touch A: B is now LRU
    c.access(0x200); // evicts B
    EXPECT_TRUE(c.access(0x000));
    EXPECT_FALSE(c.access(0x100)); // was evicted
}

TEST(Cache, FullyAssociativeLruMatchesStackDistance)
{
    // 8-way fully associative (8 lines, 1 set): a block hits iff
    // fewer than 8 distinct blocks intervened.
    Cache c(cfg(512, 64, 8));
    for (std::uint64_t b = 0; b < 8; ++b)
        c.access(b * 64);
    EXPECT_TRUE(c.access(0)); // 7 distinct blocks since: still resident
    c.reset();
    for (std::uint64_t b = 0; b < 9; ++b)
        c.access(b * 64);
    EXPECT_FALSE(c.access(0)); // 8 distinct blocks since: evicted
}

TEST(Cache, WorkingSetLargerThanCacheThrashes)
{
    Cache c(cfg(4096, 64, 4));
    // Cycle over 128 blocks (8KB) in a 4KB cache with LRU: every
    // access past warmup misses.
    for (int iter = 0; iter < 4; ++iter)
        for (std::uint64_t b = 0; b < 128; ++b)
            c.access(b * 64);
    EXPECT_GT(c.stats().missRate(), 0.99);
}

TEST(Cache, WorkingSetSmallerThanCacheHits)
{
    Cache c(cfg(8192, 64, 4));
    for (int iter = 0; iter < 8; ++iter)
        for (std::uint64_t b = 0; b < 64; ++b) // 4KB working set
            c.access(b * 64);
    // Only the 64 cold misses.
    EXPECT_EQ(c.stats().misses, 64u);
}

TEST(Cache, ResetClearsStateAndStats)
{
    Cache c(cfg(1024, 64, 2));
    c.access(0x100);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.access(0x100)); // cold again
}

TEST(Cache, RandomPolicyStillCaches)
{
    Cache c(cfg(4096, 64, 4, ReplPolicy::RND));
    for (int iter = 0; iter < 8; ++iter)
        for (std::uint64_t b = 0; b < 32; ++b)
            c.access(b * 64);
    // Working set fits: after warmup everything hits regardless of
    // replacement policy.
    EXPECT_EQ(c.stats().misses, 32u);
}

TEST(Cache, NmruNeverEvictsMostRecentlyUsed)
{
    Cache c(cfg(256, 64, 4, ReplPolicy::NMRU), 9);
    // 1 set of 4 ways; 5 conflicting blocks.
    for (int iter = 0; iter < 50; ++iter) {
        c.access(0x000);           // make block 0 MRU
        c.access((1 + iter % 4) * 0x100ULL);
        // Block 0 was MRU when the miss occurred: it must survive.
        EXPECT_TRUE(c.access(0x000));
    }
}

TEST(Cache, LruBeatsRandomOnLoopSlightlyOverCapacity)
{
    // Cyclic pattern slightly over capacity is LRU's worst case --
    // random replacement keeps some blocks alive. This is the policy
    // effect Table 5 explores.
    const std::uint64_t blocks = 72; // 64-line cache
    Cache lru(cfg(4096, 64, 8, ReplPolicy::LRU));
    Cache rnd(cfg(4096, 64, 8, ReplPolicy::RND), 3);
    for (int iter = 0; iter < 30; ++iter) {
        for (std::uint64_t b = 0; b < blocks; ++b) {
            lru.access(b * 64);
            rnd.access(b * 64);
        }
    }
    EXPECT_GT(lru.stats().missRate(), rnd.stats().missRate());
}

TEST(Cache, StatsMissRateEmptyCache)
{
    Cache c(cfg(1024, 64, 2));
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.0);
}

} // namespace
} // namespace hwsw::uarch
