// Unit tests for the profile dataset.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <set>

#include "core/dataset.hpp"

namespace hwsw::core {
namespace {

ProfileRecord
rec(const std::string &app, double perf, double x0 = 0.0)
{
    ProfileRecord r;
    r.app = app;
    r.perf = perf;
    r.vars[0] = x0;
    return r;
}

TEST(Dataset, AddAndIndex)
{
    Dataset ds;
    EXPECT_TRUE(ds.empty());
    ds.add(rec("a", 1.0));
    ds.add(rec("b", 2.0));
    ds.add(rec("a", 3.0));
    EXPECT_EQ(ds.size(), 3u);
    EXPECT_EQ(ds[2].app, "a");
    EXPECT_THROW(ds[3], PanicError);
}

TEST(Dataset, AppNamesFirstSeenOrder)
{
    Dataset ds;
    ds.add(rec("z", 1.0));
    ds.add(rec("a", 1.0));
    ds.add(rec("z", 1.0));
    ASSERT_EQ(ds.appNames().size(), 2u);
    EXPECT_EQ(ds.appNames()[0], "z");
    EXPECT_EQ(ds.appNames()[1], "a");
}

TEST(Dataset, IndicesForApp)
{
    Dataset ds;
    ds.add(rec("a", 1.0));
    ds.add(rec("b", 2.0));
    ds.add(rec("a", 3.0));
    const auto idx = ds.indicesForApp("a");
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 2u);
    EXPECT_TRUE(ds.indicesForApp("nope").empty());
}

TEST(Dataset, Columns)
{
    Dataset ds;
    ds.add(rec("a", 1.0, 10.0));
    ds.add(rec("a", 2.0, 20.0));
    const auto col = ds.column(0);
    EXPECT_DOUBLE_EQ(col[0], 10.0);
    EXPECT_DOUBLE_EQ(col[1], 20.0);
    const auto perf = ds.perfColumn();
    EXPECT_DOUBLE_EQ(perf[1], 2.0);
    EXPECT_THROW(ds.column(kNumVars), PanicError);
}

TEST(Dataset, VarNamesCoverSoftwareAndHardware)
{
    const auto &names = Dataset::varNames();
    ASSERT_EQ(names.size(), kNumVars);
    EXPECT_EQ(names[0], "x1.ctrl");
    EXPECT_EQ(names[kNumSw], "y1.width");
    EXPECT_TRUE(isSoftwareVar(0));
    EXPECT_TRUE(isSoftwareVar(kNumSw - 1));
    EXPECT_FALSE(isSoftwareVar(kNumSw));
}

TEST(Dataset, Subset)
{
    Dataset ds;
    ds.add(rec("a", 1.0));
    ds.add(rec("b", 2.0));
    ds.add(rec("c", 3.0));
    std::vector<std::size_t> idx = {2, 0};
    const Dataset sub = ds.subset(idx);
    ASSERT_EQ(sub.size(), 2u);
    EXPECT_EQ(sub[0].app, "c");
    EXPECT_EQ(sub[1].app, "a");
}

TEST(Dataset, SplitAppPartitions)
{
    Dataset ds;
    for (int i = 0; i < 20; ++i)
        ds.add(rec("a", i));
    for (int i = 0; i < 5; ++i)
        ds.add(rec("b", i));
    Rng rng(3);
    const auto split = ds.splitApp("a", 0.7, rng);
    EXPECT_EQ(split.train.size(), 14u);
    EXPECT_EQ(split.validation.size(), 6u);

    // Disjoint, covering, and all from app "a".
    std::set<std::size_t> all(split.train.begin(), split.train.end());
    for (std::size_t i : split.validation) {
        EXPECT_TRUE(all.insert(i).second);
        EXPECT_EQ(ds[i].app, "a");
    }
    EXPECT_EQ(all.size(), 20u);
}

TEST(Dataset, SplitAppRejectsBadFraction)
{
    Dataset ds;
    ds.add(rec("a", 1.0));
    ds.add(rec("a", 2.0));
    Rng rng(1);
    EXPECT_THROW(ds.splitApp("a", 0.0, rng), FatalError);
    EXPECT_THROW(ds.splitApp("a", 1.0, rng), FatalError);
}

TEST(Dataset, SplitAppNeedsTwoRecords)
{
    Dataset ds;
    ds.add(rec("a", 1.0));
    Rng rng(1);
    EXPECT_THROW(ds.splitApp("a", 0.5, rng), FatalError);
}

TEST(Dataset, MakeRecordPacksFeatures)
{
    prof::ShardProfile p;
    p.app = "demo";
    p.shardIndex = 4;
    p.memFrac = 0.4;
    p.avgDReuse = 123.0;
    uarch::UarchConfig cfg;
    cfg.width = 8;
    const ProfileRecord r = makeRecord(p, cfg, 1.7);
    EXPECT_EQ(r.app, "demo");
    EXPECT_EQ(r.shardIndex, 4u);
    EXPECT_DOUBLE_EQ(r.perf, 1.7);
    EXPECT_DOUBLE_EQ(r.vars[6], 0.4);   // x7 mem
    EXPECT_DOUBLE_EQ(r.vars[7], 123.0); // x8 d_reuse
    EXPECT_DOUBLE_EQ(r.vars[kNumSw], 8.0); // y1 width
}

TEST(Dataset, AddAllMerges)
{
    Dataset a, b;
    a.add(rec("x", 1.0));
    b.add(rec("y", 2.0));
    a.addAll(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.appNames().size(), 2u);
}

} // namespace
} // namespace hwsw::core
