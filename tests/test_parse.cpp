// Unit tests for strict string-to-number parsing.
#include <gtest/gtest.h>

#include <string>

#include "common/parse.hpp"

namespace hwsw {
namespace {

TEST(Parse, IntAcceptsValid)
{
    EXPECT_EQ(parseInt("0").value(), 0);
    EXPECT_EQ(parseInt("42").value(), 42);
    EXPECT_EQ(parseInt("-7").value(), -7);
    EXPECT_EQ(parseInt("9223372036854775807").value(),
              9223372036854775807LL);
}

TEST(Parse, IntRejectsDefects)
{
    EXPECT_FALSE(parseInt(""));
    EXPECT_FALSE(parseInt(" 1"));        // leading whitespace
    EXPECT_FALSE(parseInt("1 "));        // trailing whitespace
    EXPECT_FALSE(parseInt("8garbage"));  // partial match
    EXPECT_FALSE(parseInt("1.5"));       // not an integer
    EXPECT_FALSE(parseInt("x"));
    EXPECT_FALSE(parseInt("0x10"));      // no radix prefixes
    EXPECT_FALSE(parseInt("9223372036854775808")); // overflow
}

TEST(Parse, UnsignedAcceptsValid)
{
    EXPECT_EQ(parseUnsigned("0").value(), 0ull);
    EXPECT_EQ(parseUnsigned("65535").value(), 65535ull);
    EXPECT_EQ(parseUnsigned("18446744073709551615").value(),
              18446744073709551615ull);
}

TEST(Parse, UnsignedRejectsDefects)
{
    EXPECT_FALSE(parseUnsigned(""));
    EXPECT_FALSE(parseUnsigned("-1"));
    EXPECT_FALSE(parseUnsigned("+1"));
    EXPECT_FALSE(parseUnsigned("12x"));
    EXPECT_FALSE(parseUnsigned("18446744073709551616")); // overflow
}

TEST(Parse, DoubleAcceptsValid)
{
    EXPECT_DOUBLE_EQ(parseDouble("0").value(), 0.0);
    EXPECT_DOUBLE_EQ(parseDouble("-2.5").value(), -2.5);
    EXPECT_DOUBLE_EQ(parseDouble("1e-3").value(), 1e-3);
    EXPECT_DOUBLE_EQ(parseDouble("3.25E2").value(), 325.0);
}

TEST(Parse, DoubleRoundTripsPrecisely)
{
    // %.17g is the serialization format; parsing it back must be
    // bit-exact.
    const double v = 0.1 + 0.2;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    EXPECT_EQ(parseDouble(buf).value(), v);
}

TEST(Parse, DoubleRejectsDefects)
{
    EXPECT_FALSE(parseDouble(""));
    EXPECT_FALSE(parseDouble("1.2.3"));
    EXPECT_FALSE(parseDouble("1,5"));
    EXPECT_FALSE(parseDouble("abc"));
    EXPECT_FALSE(parseDouble("1.0x"));
    EXPECT_FALSE(parseDouble("nan"));
    EXPECT_FALSE(parseDouble("inf"));
    EXPECT_FALSE(parseDouble("-inf"));
    EXPECT_FALSE(parseDouble("1e999")); // overflows to inf
}

TEST(Parse, WorksOnSubstrings)
{
    const std::string line = "predict 42 1.5";
    EXPECT_EQ(parseUnsigned(std::string_view(line).substr(8, 2)), 42u);
}

} // namespace
} // namespace hwsw
