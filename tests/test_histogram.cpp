// Unit tests for histograms.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <vector>

#include "common/histogram.hpp"

namespace hwsw {
namespace {

TEST(Histogram, BinsCountsCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(9.9);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(Histogram, FromSamplesSpansRange)
{
    std::vector<double> xs = {1, 2, 3, 4, 100};
    Histogram h = Histogram::fromSamples(xs, 8);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.lo(), 1.0);
    EXPECT_DOUBLE_EQ(h.hi(), 100.0);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 4.0, 2);
    h.add(1.0);
    h.add(1.0);
    h.add(3.0);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(Log2Histogram, PowerOfTwoBinning)
{
    Log2Histogram h(10);
    h.add(0.5);  // bin 0
    h.add(1.0);  // bin 0
    h.add(2.0);  // bin 1
    h.add(3.9);  // bin 1
    h.add(4.0);  // bin 2
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 1u);
}

TEST(Log2Histogram, HugeValuesClampToTopBin)
{
    Log2Histogram h(8);
    h.add(1e18);
    EXPECT_EQ(h.count(7), 1u);
}

TEST(Log2Histogram, TailFraction)
{
    Log2Histogram h(10);
    h.add(1.0);   // bin 0
    h.add(2.0);   // bin 1
    h.add(16.0);  // bin 4
    h.add(16.0);  // bin 4
    EXPECT_DOUBLE_EQ(h.tailFraction(0), 1.0);
    EXPECT_DOUBLE_EQ(h.tailFraction(1), 0.75);
    EXPECT_DOUBLE_EQ(h.tailFraction(2), 0.5);
    EXPECT_DOUBLE_EQ(h.tailFraction(5), 0.0);
}

TEST(Log2Histogram, TailFractionEmpty)
{
    Log2Histogram h(4);
    EXPECT_DOUBLE_EQ(h.tailFraction(0), 0.0);
}

TEST(Log2Histogram, MergeAddsCounts)
{
    Log2Histogram a(8), b(8);
    a.add(2.0);
    b.add(2.0);
    b.add(64.0);
    a.merge(b);
    EXPECT_EQ(a.count(1), 2u);
    EXPECT_EQ(a.count(6), 1u);
    EXPECT_EQ(a.total(), 3u);
}

TEST(Log2Histogram, MergeRejectsMismatchedBins)
{
    Log2Histogram a(8), b(9);
    EXPECT_THROW(a.merge(b), PanicError);
}

} // namespace
} // namespace hwsw
