// Unit tests for histograms.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <vector>

#include "common/histogram.hpp"

namespace hwsw {
namespace {

TEST(Histogram, BinsCountsCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(9.9);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 9.5);
}

TEST(Histogram, FromSamplesSpansRange)
{
    std::vector<double> xs = {1, 2, 3, 4, 100};
    Histogram h = Histogram::fromSamples(xs, 8);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.lo(), 1.0);
    EXPECT_DOUBLE_EQ(h.hi(), 100.0);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 4.0, 2);
    h.add(1.0);
    h.add(1.0);
    h.add(3.0);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(Histogram, QuantileUniformSamples)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5); // one sample per bin
    // Exact-at-bin-resolution: the q-th quantile lands inside the
    // q-th bin, so it is within one bin width of the ideal value.
    EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.95), 95.0, 1.0);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
    EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);
}

TEST(Histogram, QuantileIsMonotonic)
{
    Histogram h(0.0, 10.0, 50);
    h.add(1.0);
    h.add(2.0);
    h.add(2.1);
    h.add(9.0);
    double prev = h.quantile(0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        const double cur = h.quantile(q);
        EXPECT_GE(cur, prev) << "q=" << q;
        prev = cur;
    }
}

TEST(Histogram, QuantileSingleSample)
{
    Histogram h(0.0, 10.0, 10);
    h.add(3.3); // bin 3 spans [3, 4)
    EXPECT_GE(h.quantile(0.5), 3.0);
    EXPECT_LE(h.quantile(0.5), 4.0);
    EXPECT_GE(h.quantile(1.0), 3.0);
    EXPECT_LE(h.quantile(1.0), 4.0);
}

TEST(Histogram, QuantileSkipsTrailingEmptyBins)
{
    Histogram h(0.0, 100.0, 100);
    h.add(5.5);
    h.add(6.5);
    // All mass is below 10; p100 must not report the empty tail.
    EXPECT_LE(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileRejectsBadInput)
{
    Histogram empty(0.0, 1.0, 4);
    EXPECT_THROW(empty.quantile(0.5), FatalError);
    Histogram h(0.0, 1.0, 4);
    h.add(0.5);
    EXPECT_THROW(h.quantile(-0.1), FatalError);
    EXPECT_THROW(h.quantile(1.1), FatalError);
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 10);
    a.add(1.5);
    b.add(1.5);
    b.add(8.5);
    a.merge(b);
    EXPECT_EQ(a.count(1), 2u);
    EXPECT_EQ(a.count(8), 1u);
    EXPECT_EQ(a.total(), 3u);
}

TEST(Histogram, MergeRejectsMismatchedBinning)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 20);
    Histogram c(0.0, 5.0, 10);
    EXPECT_THROW(a.merge(b), PanicError);
    EXPECT_THROW(a.merge(c), PanicError);
}

TEST(Histogram, MergeDisjointRangesSpansBoth)
{
    // Per-thread recorders whose samples never overlapped: the merge
    // must report quantiles spanning both populations.
    Histogram lo(0.0, 10.0, 100), hi(0.0, 10.0, 100);
    for (int i = 0; i < 50; ++i) {
        lo.add(1.0 + 0.001 * i);
        hi.add(9.0 + 0.001 * i);
    }
    lo.merge(hi);
    EXPECT_EQ(lo.total(), 100u);
    EXPECT_LT(lo.quantile(0.25), 2.0);
    EXPECT_GT(lo.quantile(0.75), 8.9);
    // The median sits at the boundary between the two populations.
    EXPECT_GE(lo.quantile(0.5), 1.0);
    EXPECT_LE(lo.quantile(0.5), 9.1);
}

TEST(Histogram, MergeWithEmptyIsIdentity)
{
    Histogram a(0.0, 10.0, 10), empty(0.0, 10.0, 10);
    a.add(4.5);
    a.merge(empty);
    EXPECT_EQ(a.total(), 1u);
    EXPECT_EQ(a.count(4), 1u);

    // Merging into an empty histogram copies the counts over.
    empty.merge(a);
    EXPECT_EQ(empty.total(), 1u);
    EXPECT_EQ(empty.count(4), 1u);
}

TEST(Histogram, QuantileExtremesClampToOccupiedBins)
{
    // q=0 and q=1 must answer from the first/last occupied bin, not
    // the histogram's configured range.
    Histogram h(0.0, 100.0, 100);
    h.add(40.5);
    h.add(41.5);
    h.add(42.5);
    EXPECT_GE(h.quantile(0.0), 40.0);
    EXPECT_LE(h.quantile(0.0), 41.0);
    EXPECT_GE(h.quantile(1.0), 42.0);
    EXPECT_LE(h.quantile(1.0), 43.0);
}

TEST(Log2Histogram, PowerOfTwoBinning)
{
    Log2Histogram h(10);
    h.add(0.5);  // bin 0
    h.add(1.0);  // bin 0
    h.add(2.0);  // bin 1
    h.add(3.9);  // bin 1
    h.add(4.0);  // bin 2
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 1u);
}

TEST(Log2Histogram, HugeValuesClampToTopBin)
{
    Log2Histogram h(8);
    h.add(1e18);
    EXPECT_EQ(h.count(7), 1u);
}

TEST(Log2Histogram, TailFraction)
{
    Log2Histogram h(10);
    h.add(1.0);   // bin 0
    h.add(2.0);   // bin 1
    h.add(16.0);  // bin 4
    h.add(16.0);  // bin 4
    EXPECT_DOUBLE_EQ(h.tailFraction(0), 1.0);
    EXPECT_DOUBLE_EQ(h.tailFraction(1), 0.75);
    EXPECT_DOUBLE_EQ(h.tailFraction(2), 0.5);
    EXPECT_DOUBLE_EQ(h.tailFraction(5), 0.0);
}

TEST(Log2Histogram, TailFractionEmpty)
{
    Log2Histogram h(4);
    EXPECT_DOUBLE_EQ(h.tailFraction(0), 0.0);
}

TEST(Log2Histogram, MergeAddsCounts)
{
    Log2Histogram a(8), b(8);
    a.add(2.0);
    b.add(2.0);
    b.add(64.0);
    a.merge(b);
    EXPECT_EQ(a.count(1), 2u);
    EXPECT_EQ(a.count(6), 1u);
    EXPECT_EQ(a.total(), 3u);
}

TEST(Log2Histogram, MergeRejectsMismatchedBins)
{
    Log2Histogram a(8), b(9);
    EXPECT_THROW(a.merge(b), PanicError);
}

TEST(Log2Histogram, QuantileGeometricBins)
{
    Log2Histogram h(12);
    for (int i = 0; i < 90; ++i)
        h.add(3.0);    // bin 1: [2, 4)
    for (int i = 0; i < 10; ++i)
        h.add(600.0);  // bin 9: [512, 1024)
    const double p50 = h.quantile(0.50);
    EXPECT_GE(p50, 2.0);
    EXPECT_LT(p50, 4.0);
    const double p99 = h.quantile(0.99);
    EXPECT_GE(p99, 512.0);
    EXPECT_LT(p99, 1024.0);
}

TEST(Log2Histogram, QuantileEmptyIsFatal)
{
    Log2Histogram h(4);
    EXPECT_THROW(h.quantile(0.5), FatalError);
}

} // namespace
} // namespace hwsw
