// Tests for the versioned hot-swap model registry.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "serve/registry.hpp"

#include "serve_test_util.hpp"

namespace hwsw::serve {
namespace {

TEST(ServeRegistry, PublishAssignsIncreasingVersions)
{
    ModelRegistry reg;
    const core::HwSwModel model = testutil::makeModel();
    EXPECT_EQ(reg.publish("m", model, "s1"), 1u);
    EXPECT_EQ(reg.publish("m", model, "s2"), 2u);
    EXPECT_EQ(reg.publish("other", model, "s3"), 1u); // per-name
    EXPECT_EQ(reg.size(), 2u);
}

TEST(ServeRegistry, LookupReturnsActiveSnapshot)
{
    ModelRegistry reg;
    reg.publish("m", testutil::makeModel(), "boot");
    const SnapshotPtr snap = reg.lookup("m");
    ASSERT_TRUE(snap);
    EXPECT_EQ(snap->name, "m");
    EXPECT_EQ(snap->version, 1u);
    EXPECT_EQ(snap->source, "boot");
    EXPECT_TRUE(snap->model.fitted());

    EXPECT_EQ(reg.lookup("missing"), nullptr);
}

TEST(ServeRegistry, PinnedSnapshotSurvivesRepublish)
{
    ModelRegistry reg(/*history=*/2);
    reg.publish("m", testutil::makeModel(1), "v1");
    const SnapshotPtr pinned = reg.lookup("m");
    for (int i = 0; i < 6; ++i)
        reg.publish("m", testutil::makeModel(1), "later");
    // The pinned snapshot fell out of the history window long ago,
    // but the reader that pinned it still owns a valid model.
    EXPECT_EQ(pinned->version, 1u);
    EXPECT_TRUE(pinned->model.fitted());
    EXPECT_EQ(reg.lookup("m")->version, 7u);
}

TEST(ServeRegistry, SwapActivatesRetainedVersion)
{
    ModelRegistry reg(/*history=*/4);
    reg.publish("m", testutil::makeModel(), "v1");
    reg.publish("m", testutil::makeModel(), "v2");
    reg.publish("m", testutil::makeModel(), "v3");

    ASSERT_TRUE(reg.swap("m", 2));
    EXPECT_EQ(reg.lookup("m")->version, 2u);
    ASSERT_TRUE(reg.swap("m", 3)); // roll forward again
    EXPECT_EQ(reg.lookup("m")->version, 3u);
}

TEST(ServeRegistry, SwapRefusesUnknownTargets)
{
    ModelRegistry reg(/*history=*/2);
    reg.publish("m", testutil::makeModel(), "v1");
    reg.publish("m", testutil::makeModel(), "v2");
    reg.publish("m", testutil::makeModel(), "v3");

    EXPECT_FALSE(reg.swap("m", 1)); // evicted by history bound
    EXPECT_FALSE(reg.swap("m", 99));
    EXPECT_FALSE(reg.swap("nope", 1));
    EXPECT_EQ(reg.lookup("m")->version, 3u); // unchanged on refusal
}

TEST(ServeRegistry, ListReportsEveryName)
{
    ModelRegistry reg;
    reg.publish("a", testutil::makeModel(), "sa");
    reg.publish("b", testutil::makeModel(), "sb");
    reg.publish("b", testutil::makeModel(), "sb2");
    const auto rows = reg.list();
    ASSERT_EQ(rows.size(), 2u);
    for (const ModelInfo &info : rows) {
        if (info.name == "a") {
            EXPECT_EQ(info.activeVersion, 1u);
        } else {
            EXPECT_EQ(info.name, "b");
            EXPECT_EQ(info.activeVersion, 2u);
            EXPECT_EQ(info.source, "sb2");
        }
    }
}

TEST(ServeRegistry, RejectsBadPublishes)
{
    ModelRegistry reg;
    EXPECT_THROW(reg.publish("", testutil::makeModel(), "s"),
                 FatalError);
    EXPECT_THROW(reg.publish("m", core::HwSwModel(), "s"), FatalError);
    EXPECT_THROW(ModelRegistry(0), FatalError);
}

TEST(ServeRegistry, ConcurrentReadersAndPublishers)
{
    // Readers continuously resolve + use snapshots while two
    // publishers race on the same name. Run under TSan via the
    // tier15_serve aggregate.
    ModelRegistry reg(/*history=*/3);
    const core::HwSwModel model = testutil::makeModel();
    reg.publish("m", model, "boot");

    std::atomic<bool> go{true};
    std::atomic<std::uint64_t> reads{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            Rng rng(7);
            const auto rec = testutil::rowRecord(testutil::makeRow(rng));
            while (go.load(std::memory_order_relaxed)) {
                const SnapshotPtr snap = reg.lookup("m");
                ASSERT_TRUE(snap);
                ASSERT_GE(snap->version, 1u);
                (void)snap->model.predict(rec);
                reads.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 50; ++i) {
                reg.publish("m", model, "race");
                if (i % 8 == 0)
                    reg.swap("m", reg.lookup("m")->version);
            }
        });
    }
    threads[2].join();
    threads[3].join();
    go.store(false, std::memory_order_relaxed);
    threads[0].join();
    threads[1].join();

    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(reg.lookup("m")->version, 101u); // 1 + 2 * 50
}

} // namespace
} // namespace hwsw::serve
