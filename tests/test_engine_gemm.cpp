// GEMM batch prediction tests: the engine's design-matrix + X·β
// path must be bit-identical to per-row predict() across random
// models (interactions, splines, rank-deficient fits), batch-size
// edges, and concurrent hot swaps. Part of the tier15_reactor
// aggregate (see CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "serve/engine.hpp"

#include "serve_test_util.hpp"

namespace hwsw::serve {
namespace {

/** Training data exercising every variable (not just 6/7/kNumSw). */
core::Dataset
richData(std::uint64_t seed)
{
    core::Dataset ds;
    Rng rng(seed);
    for (const char *app : {"a", "b", "c"}) {
        for (int i = 0; i < 50; ++i) {
            core::ProfileRecord r;
            r.app = app;
            double acc = 0.3;
            for (std::size_t v = 0; v < core::kNumVars; ++v) {
                r.vars[v] = rng.nextUniform(0.05, 4.0);
                acc += 0.05 * r.vars[v];
            }
            r.perf = acc + 0.1 * rng.nextUniform(0.0, 1.0);
            ds.add(r);
        }
    }
    return ds;
}

/** A random spec: every gene value possible, plus interactions. */
core::ModelSpec
randomSpec(Rng &rng)
{
    core::ModelSpec s;
    for (std::size_t v = 0; v < core::kNumVars; ++v)
        s.genes[v] = static_cast<std::uint8_t>(rng.nextInt(5));
    s.genes[6] = 3; // guarantee at least one included variable
    std::vector<std::uint16_t> included;
    for (std::size_t v = 0; v < core::kNumVars; ++v)
        if (s.genes[v] != 0)
            included.push_back(static_cast<std::uint16_t>(v));
    if (included.size() >= 2) {
        s.interactions.push_back({included[0], included.back()});
        s.interactions.push_back(
            {included[included.size() / 2], included[0]});
    }
    s.normalize();
    return s;
}

/** A feature row spanning all variables. */
FeatureVector
richRow(Rng &rng)
{
    FeatureVector row{};
    for (std::size_t v = 0; v < core::kNumVars; ++v)
        row[v] = rng.nextUniform(0.05, 4.0);
    return row;
}

EngineOptions
gemmOpts()
{
    EngineOptions o;
    o.threads = 2;
    o.inlineBatch = 1; // every batch of 2+ takes the GEMM path
    return o;
}

std::shared_ptr<ModelRegistry>
publish(core::HwSwModel model)
{
    auto reg = std::make_shared<ModelRegistry>();
    reg->publish("m", std::move(model), "test");
    return reg;
}

void
expectBatchBitExact(PredictionEngine &eng, const SnapshotPtr &snap,
                    std::span<const FeatureVector> rows)
{
    const PredictOutcome out = eng.predict("m", rows);
    ASSERT_EQ(out.status, PredictStatus::Ok);
    ASSERT_EQ(out.predictions.size(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(out.predictions[i],
                  snap->model.predict(testutil::rowRecord(rows[i])))
            << "row " << i;
    }
}

TEST(EngineGemm, RandomModelsMatchPerRowBitExact)
{
    // Several random specs (polynomials, splines, interactions) over
    // data exercising all variables: the assembled-matrix product
    // must reproduce scalar predict() to the last bit.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Rng rng(seed);
        core::HwSwModel model;
        model.fit(randomSpec(rng), richData(seed));
        auto reg = publish(std::move(model));
        PredictionEngine eng(reg, gemmOpts());
        const SnapshotPtr snap = reg->lookup("m");

        for (const std::size_t n : {2u, 3u, 17u, 64u}) {
            std::vector<FeatureVector> rows;
            for (std::size_t i = 0; i < n; ++i)
                rows.push_back(richRow(rng));
            expectBatchBitExact(eng, snap, rows);
        }
    }
}

TEST(EngineGemm, RankDeficientAndDegenerateModels)
{
    // Duplicate and constant variables make the design collinear;
    // QR drops columns and the fit is rank-deficient. The GEMM path
    // must agree with per-row predict on the surviving coefficients.
    core::Dataset ds;
    Rng rng(7);
    for (int i = 0; i < 80; ++i) {
        core::ProfileRecord r;
        r.app = "a";
        const double x = rng.nextUniform(0.1, 2.0);
        r.vars[2] = x;
        r.vars[3] = x;   // duplicate of var 2
        r.vars[4] = 1.0; // constant
        r.vars[6] = rng.nextUniform(0.1, 0.6);
        r.perf = 0.4 + x + 0.5 * r.vars[6];
        ds.add(r);
    }
    core::ModelSpec s;
    s.genes[2] = 2;
    s.genes[3] = 2;
    s.genes[4] = 1;
    s.genes[6] = 4;
    s.interactions = {{2, 3}};
    s.normalize();
    core::HwSwModel model;
    model.fit(s, ds);
    EXPECT_GT(model.numDroppedColumns(), 0u);

    auto reg = publish(std::move(model));
    PredictionEngine eng(reg, gemmOpts());
    const SnapshotPtr snap = reg->lookup("m");
    std::vector<FeatureVector> rows;
    for (int i = 0; i < 33; ++i) // odd batch size on purpose
        rows.push_back(richRow(rng));
    expectBatchBitExact(eng, snap, rows);
}

TEST(EngineGemm, DeserializedModelMatchesBitExact)
{
    // fromParts models (the serving load path) carry externally
    // installed coefficients; the GEMM path must treat them exactly
    // like freshly fitted ones.
    const core::HwSwModel fitted = testutil::makeModel(3);
    core::HwSwModel loaded = core::HwSwModel::fromParts(
        fitted.spec(), fitted.builder().basis(),
        fitted.coefficients(), fitted.logResponse());
    auto reg = publish(std::move(loaded));
    PredictionEngine eng(reg, gemmOpts());
    const SnapshotPtr snap = reg->lookup("m");

    Rng rng(11);
    std::vector<FeatureVector> rows;
    for (int i = 0; i < 21; ++i)
        rows.push_back(testutil::makeRow(rng));
    expectBatchBitExact(eng, snap, rows);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(snap->model.predict(testutil::rowRecord(rows[i])),
                  fitted.predict(testutil::rowRecord(rows[i])));
    }
}

TEST(EngineGemm, BatchSizeEdges)
{
    auto reg = publish(testutil::makeModel());
    EngineOptions opts = gemmOpts();
    opts.maxBatch = 64;
    PredictionEngine eng(reg, opts);
    const SnapshotPtr snap = reg->lookup("m");
    Rng rng(5);

    // Empty batches are refused, not crashed on.
    EXPECT_EQ(eng.predict("m", {}).status, PredictStatus::TooLarge);

    // Size 1 stays on the scalar path and still matches.
    const FeatureVector one = testutil::makeRow(rng);
    const PredictOutcome scalar = eng.predictOne("m", one);
    ASSERT_EQ(scalar.status, PredictStatus::Ok);
    EXPECT_EQ(scalar.predictions[0],
              snap->model.predict(testutil::rowRecord(one)));

    // Odd sizes and the exact maxBatch boundary take the GEMM path.
    for (const std::size_t n : {7u, 63u, 64u}) {
        std::vector<FeatureVector> rows;
        for (std::size_t i = 0; i < n; ++i)
            rows.push_back(testutil::makeRow(rng));
        expectBatchBitExact(eng, snap, rows);
    }

    std::vector<FeatureVector> over(65, one);
    EXPECT_EQ(eng.predict("m", over).status,
              PredictStatus::TooLarge);
}

TEST(EngineGemm, PooledShardsMatchSingleShard)
{
    // Batches past parallelBatch shard across the pool; sharded
    // assembly must still be bit-identical to the per-row reference.
    auto reg = publish(testutil::makeModel(2));
    EngineOptions opts = gemmOpts();
    opts.parallelBatch = 64; // force sharding at a test-sized batch
    opts.maxBatch = 4096;
    PredictionEngine eng(reg, opts);
    const SnapshotPtr snap = reg->lookup("m");

    Rng rng(13);
    std::vector<FeatureVector> rows;
    for (int i = 0; i < 301; ++i) // not a multiple of the shard size
        rows.push_back(testutil::makeRow(rng));
    expectBatchBitExact(eng, snap, rows);
    EXPECT_EQ(eng.inFlight(), 0u);
}

TEST(EngineGemm, HotSwapMidBatchKeepsBatchesConsistent)
{
    // Readers run GEMM batches continuously while the main thread
    // republishes two distinct models. Every outcome must be
    // entirely one model's predictions — a swap must never tear a
    // batch between coefficient sets.
    auto reg = std::make_shared<ModelRegistry>();
    const core::HwSwModel modelA = testutil::makeModel(1);
    const core::HwSwModel modelB = testutil::makeModel(2);
    reg->publish("m", modelA, "boot");

    Rng rng(17);
    std::vector<FeatureVector> rows;
    for (int i = 0; i < 24; ++i)
        rows.push_back(testutil::makeRow(rng));
    std::vector<double> expectA, expectB;
    for (const FeatureVector &row : rows) {
        expectA.push_back(
            modelA.predict(testutil::rowRecord(row)));
        expectB.push_back(
            modelB.predict(testutil::rowRecord(row)));
    }

    PredictionEngine eng(reg, gemmOpts());
    std::atomic<bool> go{true};
    std::atomic<std::uint64_t> okCount{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
        readers.emplace_back([&] {
            while (go.load(std::memory_order_relaxed)) {
                const PredictOutcome out = eng.predict("m", rows);
                ASSERT_EQ(out.status, PredictStatus::Ok);
                ASSERT_EQ(out.predictions.size(), rows.size());
                const bool allA = out.predictions == expectA;
                const bool allB = out.predictions == expectB;
                ASSERT_TRUE(allA || allB)
                    << "batch tore across a hot swap (version "
                    << out.modelVersion << ")";
                okCount.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    int publishes = 0;
    while (okCount.load(std::memory_order_relaxed) < 50 &&
           publishes < 20000) {
        reg->publish("m", (publishes & 1) ? modelB : modelA, "swap");
        ++publishes;
        std::this_thread::yield();
    }
    go.store(false, std::memory_order_relaxed);
    for (auto &t : readers)
        t.join();

    EXPECT_GT(okCount.load(), 0u);
    EXPECT_EQ(eng.counters().shed, 0u);
    EXPECT_EQ(eng.inFlight(), 0u);
}

} // namespace
} // namespace hwsw::serve
