// Tests for the SPEC2006-analog suite, parameterized across the
// seven applications and six variants.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "profiler/profiler.hpp"
#include "workload/apps.hpp"
#include "workload/generator.hpp"

namespace hwsw::wl {
namespace {

class SuiteAppTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteAppTest, SpecIsWellFormed)
{
    const AppSpec app = makeApp(GetParam());
    EXPECT_EQ(app.name, GetParam());
    ASSERT_FALSE(app.phases.empty());
    for (const Phase &p : app.phases) {
        EXPECT_GE(p.meanBasicBlock, 1.0);
        EXPECT_GT(p.weight, 0.0);
        EXPECT_GE(p.branchTakenRate, 0.0);
        EXPECT_LE(p.branchTakenRate, 1.0);
        EXPECT_GE(p.branchPredictability, 0.0);
        EXPECT_LE(p.branchPredictability, 1.0);
        EXPECT_FALSE(p.streams.empty());
        EXPECT_GT(p.codeFootprintBytes, 0u);
    }
}

TEST_P(SuiteAppTest, GeneratesDeterministically)
{
    const AppSpec app = makeApp(GetParam());
    StreamGenerator a(app), b(app);
    for (int i = 0; i < 2000; ++i) {
        const MicroOp x = a.next(), y = b.next();
        ASSERT_EQ(x.addr, y.addr);
        ASSERT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
    }
}

TEST_P(SuiteAppTest, ProfileMatchesDesignIntent)
{
    const AppSpec app = makeApp(GetParam());
    StreamGenerator gen(app);
    const auto ops = gen.generate(60000);
    const auto p = prof::profileShard(ops, app.name, 0);

    // Fractions sum to one (every op belongs to a class).
    const double total = p.ctrlFrac + p.fpAluFrac + p.fpMulFrac +
        p.intMulFrac + p.intAluFrac + p.memFrac;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GT(p.avgBasicBlock, 1.0);
    EXPECT_GT(p.avgDReuse, 0.0);
    EXPECT_GT(p.avgIReuse, 0.0);

    if (GetParam() == "bwaves") {
        // The Section 4.5 outlier: FP heavy, memory light.
        EXPECT_GT(p.fpAluFrac + p.fpMulFrac, 0.4);
        EXPECT_LT(p.memFrac, 0.2);
    } else {
        EXPECT_EQ(p.fpAluFrac + p.fpMulFrac > 0.3,
                  GetParam() == "gemsFDTD");
    }
}

INSTANTIATE_TEST_SUITE_P(AllApps, SuiteAppTest,
                         ::testing::ValuesIn(suiteAppNames()),
                         [](const auto &info) { return info.param; });

TEST(Suite, HasSevenApps)
{
    EXPECT_EQ(suiteAppNames().size(), 7u);
    EXPECT_EQ(makeSuite().size(), 7u);
}

TEST(Suite, UnknownAppIsFatal)
{
    EXPECT_THROW(makeApp("gcc"), FatalError);
}

TEST(Suite, BwavesHasMoreTakenBranchesPerInstruction)
{
    // Figure 9(a): bwaves has far more taken branches than the rest.
    double bwaves_taken = 0, others_taken = 0;
    int others = 0;
    for (const auto &name : suiteAppNames()) {
        StreamGenerator gen(makeApp(name));
        const auto ops = gen.generate(40000);
        const auto p = prof::profileShard(ops, name, 0);
        if (name == "bwaves") {
            bwaves_taken = p.takenFrac;
        } else {
            others_taken += p.takenFrac;
            ++others;
        }
    }
    EXPECT_GT(bwaves_taken, 1.5 * others_taken / others);
}

class VariantTest : public ::testing::TestWithParam<Variant>
{
};

TEST_P(VariantTest, VariantChangesBehavior)
{
    const AppSpec base = makeApp("bzip2");
    const AppSpec var = applyVariant(base, GetParam());
    if (GetParam() == Variant::Base) {
        EXPECT_EQ(var.name, base.name);
        return;
    }
    EXPECT_NE(var.name, base.name);
    EXPECT_NE(var.seed, base.seed);

    // The dynamic stream must actually differ.
    StreamGenerator a(base), b(var);
    int diff = 0;
    for (int i = 0; i < 2000; ++i)
        diff += (a.next().addr != b.next().addr);
    EXPECT_GT(diff, 100);
}

TEST_P(VariantTest, VariantName)
{
    EXPECT_FALSE(std::string(variantName(GetParam())).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantTest,
    ::testing::Values(Variant::Base, Variant::O1, Variant::O3,
                      Variant::V1, Variant::V2, Variant::V3));

TEST(Variants, O3IncreasesDependenceSlack)
{
    const AppSpec base = makeApp("hmmer");
    const AppSpec o3 = applyVariant(base, Variant::O3);
    const AppSpec o1 = applyVariant(base, Variant::O1);
    for (std::size_t p = 0; p < base.phases.size(); ++p) {
        EXPECT_GT(o3.phases[p].depDistInt, base.phases[p].depDistInt);
        EXPECT_LT(o1.phases[p].depDistInt, base.phases[p].depDistInt);
    }
}

TEST(Variants, InputVariantsScaleWorkingSets)
{
    const AppSpec base = makeApp("omnetpp");
    const AppSpec v1 = applyVariant(base, Variant::V1);
    const AppSpec v3 = applyVariant(base, Variant::V3);
    for (std::size_t p = 0; p < base.phases.size(); ++p) {
        for (std::size_t s = 0; s < base.phases[p].streams.size(); ++s) {
            EXPECT_LT(v1.phases[p].streams[s].workingSetBytes,
                      base.phases[p].streams[s].workingSetBytes);
            EXPECT_GT(v3.phases[p].streams[s].workingSetBytes,
                      base.phases[p].streams[s].workingSetBytes);
        }
    }
}

} // namespace
} // namespace hwsw::wl
