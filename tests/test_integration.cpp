// End-to-end integration tests: the full pipeline from workload
// generation through profiling, simulation, genetic model search,
// and prediction -- a miniature of the paper's Section 4 flow.
#include <gtest/gtest.h>

#include <cmath>

#include "common/descriptive.hpp"

#include "core/genetic.hpp"
#include "core/manager.hpp"
#include "core/sampler.hpp"

namespace hwsw::core {
namespace {

/** Small shared sampler: three apps keep the test fast. */
const SpaceSampler &
miniSampler()
{
    static const SpaceSampler sampler = [] {
        SamplerOptions opts;
        opts.shardLength = 8192;
        opts.shardsPerApp = 8;
        std::vector<wl::AppSpec> apps = {
            wl::makeApp("astar"), wl::makeApp("hmmer"),
            wl::makeApp("bzip2")};
        return SpaceSampler(std::move(apps), opts);
    }();
    return sampler;
}

TEST(Integration, GeneticSearchProducesUsableModel)
{
    const Dataset train = miniSampler().sample(80, 1);
    const Dataset val = miniSampler().sample(20, 2);

    GaOptions opts;
    opts.populationSize = 12;
    opts.generations = 6;
    opts.numThreads = 1;
    GeneticSearch search(train, opts);
    const GaResult result = search.run();

    HwSwModel model;
    model.fit(result.best.spec, train);
    const auto metrics = model.validate(val);
    // Shard-level interpolation within a loose band (the benchmark
    // harness measures the real numbers at full scale).
    EXPECT_LT(metrics.medianAbsPctError, 0.35);
    EXPECT_GT(metrics.spearman, 0.7);
}

TEST(Integration, InterpolationBeatsNaiveMeanPredictor)
{
    const Dataset train = miniSampler().sample(80, 3);
    const Dataset val = miniSampler().sample(25, 4);

    GaOptions opts;
    opts.populationSize = 10;
    opts.generations = 5;
    opts.numThreads = 1;
    GeneticSearch search(train, opts);
    const GaResult result = search.run();
    HwSwModel model;
    model.fit(result.best.spec, train);

    // Naive predictor: global mean CPI of the training set.
    const auto perf = train.perfColumn();
    const double mean_cpi = hwsw::mean(perf);
    std::vector<double> naive(val.size(), mean_cpi);
    const auto naive_metrics =
        stats::evaluatePredictions(naive, val.perfColumn());
    const auto model_metrics = model.validate(val);
    EXPECT_LT(model_metrics.medianAbsPctError,
              0.5 * naive_metrics.medianAbsPctError);
}

TEST(Integration, LeaveOneAppOutExtrapolationWorks)
{
    // Train on six apps, predict the seventh's shards (Figure 10's
    // shard extrapolation, miniature scale). sjeng is held out; its
    // behavior resembles the other integer codes, which is exactly
    // the sharing the paper exploits.
    SamplerOptions sopts;
    sopts.shardLength = 8192;
    sopts.shardsPerApp = 8;
    const SpaceSampler sampler(wl::makeSuite(), sopts);

    std::vector<std::size_t> train_apps = {0, 1, 2, 3, 4, 5};
    const Dataset train = sampler.sampleApps(train_apps, 60, 5);

    GaOptions opts;
    opts.populationSize = 14;
    opts.generations = 8;
    opts.numThreads = 1;
    GeneticSearch search(train, opts);
    const GaResult result = search.run();
    HwSwModel model;
    model.fit(result.best.spec, train);

    std::vector<std::size_t> held = {6}; // sjeng
    const Dataset target = sampler.sampleApps(held, 40, 6);
    const auto metrics = model.validate(target);
    // Extrapolation is harder than interpolation; require ranking
    // quality good enough for optimization use (the paper's bar).
    EXPECT_GT(metrics.spearman, 0.6);
    EXPECT_LT(metrics.medianAbsPctError, 0.75);
}

TEST(Integration, ManagerLifecycleOnSimulatedSystem)
{
    // Bootstrap on two apps, then stream the third app's profiles
    // through the manager; it must eventually absorb or adapt.
    std::vector<std::size_t> boot_apps = {0, 1};
    const Dataset boot = miniSampler().sampleApps(boot_apps, 60, 7);

    GaOptions ga;
    ga.populationSize = 10;
    ga.generations = 4;
    ga.numThreads = 1;
    ManagerOptions mo;
    mo.profilesForUpdate = 8;
    mo.updateGenerations = 3;
    ModelManager mgr(boot, ga, mo);
    mgr.bootstrapModel();

    std::vector<std::size_t> newcomer = {2};
    const Dataset stream = miniSampler().sampleApps(newcomer, 30, 8);
    int consistent = 0, updates = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Observation obs = mgr.observe(stream[i]);
        consistent += (obs == Observation::Consistent);
        updates += (obs == Observation::Updated);
    }
    // Either the newcomer was similar enough to absorb, or the
    // manager updated; it must not be stuck demanding profiles.
    EXPECT_TRUE(consistent > 15 || updates >= 1);
}

TEST(Integration, AppLevelAggregationBeatsShardLevel)
{
    // Aggregating shard predictions into application performance
    // averages shard-level error (Section 4.4's aggregation note).
    const Dataset train = miniSampler().sample(100, 9);
    GaOptions opts;
    opts.populationSize = 10;
    opts.generations = 5;
    opts.numThreads = 1;
    GeneticSearch search(train, opts);
    HwSwModel model;
    model.fit(search.run().best.spec, train);

    Rng rng(17);
    std::vector<double> shard_errs, app_errs;
    for (int i = 0; i < 15; ++i) {
        const auto cfg = uarch::UarchConfig::randomSample(rng);
        for (std::size_t a = 0; a < miniSampler().numApps(); ++a) {
            double pred_sum = 0;
            for (std::size_t s = 0; s < 8; ++s) {
                const auto rec = miniSampler().record(a, s, cfg);
                const double pred = model.predict(rec);
                shard_errs.push_back(
                    std::abs(pred - rec.perf) / rec.perf);
                pred_sum += pred;
            }
            const double truth = miniSampler().appCpi(a, cfg);
            app_errs.push_back(
                std::abs(pred_sum / 8.0 - truth) / truth);
        }
    }
    EXPECT_LT(hwsw::median(app_errs), hwsw::median(shard_errs) + 0.02);
}

} // namespace
} // namespace hwsw::core
