// Property tests for the SpMV execution model (Section 5.2 trends).
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include "spmv/exec.hpp"
#include "spmv/matgen.hpp"

namespace hwsw::spmv {
namespace {

const CsrMatrix &
testMatrix()
{
    static const CsrMatrix m =
        generateMatrix(matrixInfo("olafu"), 0.15, 7);
    return m;
}

SpmvResult
run(std::int32_t br, std::int32_t bc, const SpmvCacheConfig &cache)
{
    const BcsrStructure s = BcsrStructure::fromCsr(testMatrix(), br, bc);
    SimOptions opts;
    opts.maxAccesses = 120 * 1000;
    return simulateSpmv(s, cache, opts);
}

TEST(SpmvExec, BasicInvariants)
{
    const SpmvResult r = run(1, 1, SpmvCacheConfig{});
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GT(r.instructions, 0.0);
    EXPECT_GT(r.mflops, 0.0);
    EXPECT_GT(r.energyNJ, 0.0);
    EXPECT_GT(r.powerW, 0.0);
    EXPECT_EQ(r.trueFlops, 2 * testMatrix().nnz());
    EXPECT_EQ(r.storedFlops, r.trueFlops); // 1x1: no fill
    EXPECT_GE(r.dMisses, 0.0);
    EXPECT_LE(r.dMisses, r.dAccesses);
    EXPECT_LE(r.iMisses, r.iAccesses);
    EXPECT_NEAR(r.seconds, r.cycles / kClockHz, 1e-15);
}

TEST(SpmvExec, TrueFlopsExcludeFill)
{
    // Blocking at an incommensurate size pads with zeros; true flops
    // stay fixed while stored flops grow (the paper's metric).
    const SpmvResult r = run(5, 5, SpmvCacheConfig{});
    EXPECT_EQ(r.trueFlops, 2 * testMatrix().nnz());
    EXPECT_GT(r.storedFlops, r.trueFlops);
}

TEST(SpmvExec, NaturalBlockingImprovesPerformance)
{
    // olafu has 3x3 natural blocks: 3x3 blocking must beat 1x1 on
    // the default cache (fewer index accesses, better locality).
    const SpmvResult unblocked = run(1, 1, SpmvCacheConfig{});
    const SpmvResult blocked = run(3, 3, SpmvCacheConfig{});
    EXPECT_GT(blocked.mflops, unblocked.mflops);
}

TEST(SpmvExec, HighFillHurtsPerformance)
{
    // An incommensurate large block pays for fill without locality
    // benefit relative to the natural size (Figure 12's fR > 1.25).
    const SpmvResult natural = run(3, 3, SpmvCacheConfig{});
    const SpmvResult padded = run(7, 7, SpmvCacheConfig{});
    const BcsrStructure s7 = BcsrStructure::fromCsr(testMatrix(), 7, 7);
    ASSERT_GT(s7.fillRatio(), 1.25);
    EXPECT_LT(padded.mflops, natural.mflops);
}

TEST(SpmvExec, LongerLinesHelpStreaming)
{
    // SpMV streams values: longer cache lines amortize latency
    // (Figure 13's main trend).
    SpmvCacheConfig short_line;
    short_line.lineBytes = 16;
    SpmvCacheConfig long_line;
    long_line.lineBytes = 128;
    const SpmvResult s = run(3, 3, short_line);
    const SpmvResult l = run(3, 3, long_line);
    EXPECT_GT(l.mflops, s.mflops);
}

TEST(SpmvExec, LongerLinesTransferMoreWords)
{
    SpmvCacheConfig short_line;
    short_line.lineBytes = 16;
    SpmvCacheConfig long_line;
    long_line.lineBytes = 128;
    const SpmvResult s = run(1, 1, short_line);
    const SpmvResult l = run(1, 1, long_line);
    // More memory traffic per miss with long lines on unblocked
    // (scattered) access -- the paper's energy argument.
    EXPECT_GT(l.memWords, s.memWords * 0.9);
    EXPECT_GT(l.nJPerFlop, s.nJPerFlop * 0.8);
}

TEST(SpmvExec, BiggerDcacheNeverSlower)
{
    SpmvCacheConfig small;
    small.dsizeKB = 4;
    SpmvCacheConfig big;
    big.dsizeKB = 256;
    EXPECT_GE(run(3, 3, big).mflops, run(3, 3, small).mflops * 0.98);
}

TEST(SpmvExec, BlockingReducesEnergy)
{
    // Figure 16(b): application tuning reduces nJ/Flop via locality.
    const SpmvResult unblocked = run(1, 1, SpmvCacheConfig{});
    const SpmvResult blocked = run(3, 3, SpmvCacheConfig{});
    EXPECT_LT(blocked.nJPerFlop, unblocked.nJPerFlop);
}

TEST(SpmvExec, SamplingApproximatesFullSimulation)
{
    const BcsrStructure s = BcsrStructure::fromCsr(testMatrix(), 3, 3);
    SimOptions full;
    full.maxAccesses = 0; // no sampling
    SimOptions sampled;
    sampled.maxAccesses = 100 * 1000;
    const SpmvResult a = simulateSpmv(s, SpmvCacheConfig{}, full);
    const SpmvResult b = simulateSpmv(s, SpmvCacheConfig{}, sampled);
    EXPECT_NEAR(b.mflops, a.mflops, 0.15 * a.mflops);
    EXPECT_NEAR(b.nJPerFlop, a.nJPerFlop, 0.15 * a.nJPerFlop);
}

TEST(SpmvExec, DeterministicForFixedSeed)
{
    const SpmvResult a = run(2, 2, SpmvCacheConfig{});
    const SpmvResult b = run(2, 2, SpmvCacheConfig{});
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.energyNJ, b.energyNJ);
}

TEST(SpmvExec, EmptyMatrixIsFatal)
{
    BcsrStructure empty;
    EXPECT_THROW(simulateSpmv(empty, SpmvCacheConfig{}), FatalError);
}

TEST(SpmvExec, TinyICacheThrashesOnBigKernels)
{
    // An 8x8 unrolled kernel outgrows a 2KB i-cache.
    SpmvCacheConfig tiny_i;
    tiny_i.isizeKB = 2;
    SpmvCacheConfig big_i;
    big_i.isizeKB = 128;
    const SpmvResult t = run(8, 8, tiny_i);
    const SpmvResult b = run(8, 8, big_i);
    EXPECT_GT(t.iMisses, b.iMisses * 5.0);
}

} // namespace
} // namespace hwsw::spmv
