// Unit tests for CSR matrices.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "spmv/csr.hpp"
#include "common/assert.hpp"

namespace hwsw::spmv {
namespace {

TEST(Csr, BuildAndQuery)
{
    CsrMatrix m(3, 4, {{0, 1, 2.0}, {2, 3, 5.0}, {0, 0, 1.0}});
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
    EXPECT_EQ(m.nnz(), 3u);
    EXPECT_DOUBLE_EQ(m.sparsity(), 3.0 / 12.0);
    // Row 0 sorted by column.
    EXPECT_EQ(m.rowStart()[0], 0u);
    EXPECT_EQ(m.rowStart()[1], 2u);
    EXPECT_EQ(m.rowStart()[2], 2u);
    EXPECT_EQ(m.rowStart()[3], 3u);
    EXPECT_EQ(m.colIdx()[0], 0);
    EXPECT_EQ(m.colIdx()[1], 1);
    EXPECT_DOUBLE_EQ(m.values()[0], 1.0);
}

TEST(Csr, DuplicatesAreSummed)
{
    CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}});
    EXPECT_EQ(m.nnz(), 1u);
    EXPECT_DOUBLE_EQ(m.values()[0], 3.5);
}

TEST(Csr, OutOfRangeEntryIsFatal)
{
    EXPECT_THROW(CsrMatrix(2, 2, {{2, 0, 1.0}}), FatalError);
    EXPECT_THROW(CsrMatrix(2, 2, {{0, -1, 1.0}}), FatalError);
    EXPECT_THROW(CsrMatrix(0, 2, {}), FatalError);
}

TEST(Csr, MultiplyMatchesDense)
{
    const std::vector<std::vector<double>> dense = {
        {1, 0, 2}, {0, 0, 0}, {3, 4, 0}};
    const CsrMatrix m = CsrMatrix::fromDense(dense);
    const std::vector<double> x = {1, 2, 3};
    const auto y = m.multiply(x);
    EXPECT_DOUBLE_EQ(y[0], 7.0);
    EXPECT_DOUBLE_EQ(y[1], 0.0);
    EXPECT_DOUBLE_EQ(y[2], 11.0);
}

TEST(Csr, MultiplySizeMismatchPanics)
{
    const CsrMatrix m = CsrMatrix::fromDense({{1.0}});
    std::vector<double> x = {1, 2};
    EXPECT_THROW(m.multiply(x), PanicError);
}

TEST(Csr, RandomRoundTripThroughDense)
{
    Rng rng(3);
    for (int trial = 0; trial < 3; ++trial) {
        const int n = 12;
        std::vector<std::vector<double>> dense(
            n, std::vector<double>(n, 0.0));
        for (int k = 0; k < 40; ++k) {
            dense[rng.nextInt(n)][rng.nextInt(n)] =
                rng.nextUniform(0.5, 2.0);
        }
        const CsrMatrix m = CsrMatrix::fromDense(dense);
        std::vector<double> x(n);
        for (auto &v : x)
            v = rng.nextUniform(-1, 1);
        const auto y = m.multiply(x);
        for (int r = 0; r < n; ++r) {
            double want = 0;
            for (int c = 0; c < n; ++c)
                want += dense[r][c] * x[c];
            EXPECT_NEAR(y[r], want, 1e-12);
        }
    }
}

} // namespace
} // namespace hwsw::spmv
