// Cross-module property tests exercising the modeling pipeline on
// controlled synthetic ground truths, parameterized over response
// shapes and noise levels.
#include <gtest/gtest.h>

#include <cmath>

#include "core/genetic.hpp"

namespace hwsw::core {
namespace {

/** Ground-truth families for the parameterized sweep. */
enum class Truth
{
    Linear,       // z = a + b x + c y
    Multiplicative, // z = a * x^b * y^c (log-linear)
    Interaction,  // z needs an x*y term
    NonMonotone,  // z has a bump in x (spline territory)
};

struct Case
{
    Truth truth;
    double noise;
    const char *name;
};

class PipelineTest : public ::testing::TestWithParam<Case>
{
  protected:
    static double
    eval(Truth t, double x, double y)
    {
        switch (t) {
          case Truth::Linear:
            return 1.0 + 2.0 * x + 0.8 * y;
          case Truth::Multiplicative:
            return 0.8 * std::pow(1.0 + x, 1.5) *
                std::pow(1.0 + y, -0.7) + 0.5;
          case Truth::Interaction:
            return 1.0 + 0.5 * x + 0.5 * y + 3.0 * x * y;
          case Truth::NonMonotone:
            return 1.5 + std::sin(3.0 * x) + 0.4 * y;
        }
        return 1.0;
    }

    static Dataset
    make(Truth t, double noise, std::size_t n, std::uint64_t seed)
    {
        Dataset ds;
        Rng rng(seed);
        for (std::size_t i = 0; i < n; ++i) {
            ProfileRecord r;
            r.app = i % 2 ? "a" : "b";
            const double x = rng.nextUniform(0, 1.5);
            const double y = rng.nextUniform(0, 1.5);
            r.vars[6] = x;
            r.vars[kNumSw + 4] = y;
            r.perf = eval(t, x, y) *
                std::exp(noise * rng.nextGaussian());
            ds.add(r);
        }
        return ds;
    }
};

TEST_P(PipelineTest, SearchRecoversTheSurface)
{
    const Case c = GetParam();
    const Dataset train = make(c.truth, c.noise, 300, 1);
    const Dataset val = make(c.truth, c.noise, 80, 2);

    GaOptions opts;
    opts.populationSize = 14;
    opts.generations = 8;
    opts.numThreads = 1;
    GeneticSearch search(train, opts);
    HwSwModel model;
    model.fit(search.run().best.spec, train);
    const auto metrics = model.validate(val);

    // At 5% multiplicative noise the best possible median error is
    // about 3.4% (the median |lognormal - 1|); allow headroom.
    EXPECT_LT(metrics.medianAbsPctError, 0.08) << c.name;
    EXPECT_GT(metrics.spearman, 0.9) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Surfaces, PipelineTest,
    ::testing::Values(
        Case{Truth::Linear, 0.0, "linear_clean"},
        Case{Truth::Linear, 0.05, "linear_noisy"},
        Case{Truth::Multiplicative, 0.0, "multiplicative_clean"},
        Case{Truth::Multiplicative, 0.05, "multiplicative_noisy"},
        Case{Truth::Interaction, 0.0, "interaction_clean"},
        Case{Truth::Interaction, 0.05, "interaction_noisy"},
        Case{Truth::NonMonotone, 0.0, "nonmonotone_clean"},
        Case{Truth::NonMonotone, 0.05, "nonmonotone_noisy"}),
    [](const auto &info) { return info.param.name; });

TEST(PipelineProperties, GeneticBeatsNaiveOnInteractionSurface)
{
    // The naive all-linear model cannot represent x*y; the search
    // must find a specification that can.
    Dataset train;
    Rng rng(5);
    for (int i = 0; i < 300; ++i) {
        ProfileRecord r;
        r.app = i % 2 ? "a" : "b";
        const double x = rng.nextUniform(0, 1.5);
        const double y = rng.nextUniform(0, 1.5);
        r.vars[6] = x;
        r.vars[kNumSw + 4] = y;
        r.perf = 1.0 + 3.0 * x * y;
        train.add(r);
    }
    GaOptions opts;
    opts.populationSize = 14;
    opts.generations = 10;
    opts.numThreads = 1;
    GeneticSearch search(train, opts);
    const GaResult result = search.run();

    ModelSpec naive;
    for (std::size_t v = 0; v < kNumVars; ++v)
        naive.genes[v] = 1;
    const auto [naive_fitness, n1] = search.evaluate(naive);
    EXPECT_LT(result.best.fitness, naive_fitness);
}

} // namespace
} // namespace hwsw::core
