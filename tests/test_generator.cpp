// Unit tests for the micro-op stream generator.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <cmath>
#include <map>

#include "workload/apps.hpp"
#include "workload/generator.hpp"

namespace hwsw::wl {
namespace {

AppSpec
simpleApp()
{
    AppSpec app;
    app.name = "simple";
    app.seed = 7;
    Phase p;
    p.name = "only";
    p.mix[static_cast<std::size_t>(OpClass::IntAlu)] = 0.5;
    p.mix[static_cast<std::size_t>(OpClass::Load)] = 0.3;
    p.mix[static_cast<std::size_t>(OpClass::Store)] = 0.2;
    p.meanBasicBlock = 5.0;
    p.branchTakenRate = 0.5;
    MemStreamSpec s;
    s.kind = MemStreamSpec::Kind::Sequential;
    s.workingSetBytes = 1 << 16;
    p.streams = {s};
    app.phases = {p};
    return app;
}

TEST(Generator, Deterministic)
{
    StreamGenerator a(simpleApp()), b(simpleApp());
    for (int i = 0; i < 5000; ++i) {
        const MicroOp x = a.next();
        const MicroOp y = b.next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
        EXPECT_EQ(x.taken, y.taken);
        EXPECT_EQ(x.depDist, y.depDist);
    }
}

TEST(Generator, BranchFrequencyMatchesBasicBlock)
{
    StreamGenerator gen(simpleApp());
    const auto ops = gen.generate(50000);
    std::size_t branches = 0;
    for (const auto &op : ops)
        branches += op.isBranch();
    const double bb = static_cast<double>(ops.size()) /
        static_cast<double>(branches);
    EXPECT_NEAR(bb, 5.0, 0.4);
}

TEST(Generator, MixMatchesSpecification)
{
    StreamGenerator gen(simpleApp());
    const auto ops = gen.generate(50000);
    std::map<OpClass, std::size_t> counts;
    std::size_t non_branch = 0;
    for (const auto &op : ops) {
        if (!op.isBranch()) {
            ++counts[op.cls];
            ++non_branch;
        }
    }
    EXPECT_NEAR(static_cast<double>(counts[OpClass::IntAlu]) /
                    static_cast<double>(non_branch), 0.5, 0.03);
    EXPECT_NEAR(static_cast<double>(counts[OpClass::Load]) /
                    static_cast<double>(non_branch), 0.3, 0.03);
    EXPECT_NEAR(static_cast<double>(counts[OpClass::Store]) /
                    static_cast<double>(non_branch), 0.2, 0.03);
    EXPECT_EQ(counts[OpClass::FpAlu], 0u);
}

TEST(Generator, MemoryOpsHaveAddresses)
{
    StreamGenerator gen(simpleApp());
    const auto ops = gen.generate(10000);
    for (const auto &op : ops) {
        if (op.isMem())
            EXPECT_NE(op.addr, 0u);
    }
}

TEST(Generator, SequentialStreamIsSequential)
{
    StreamGenerator gen(simpleApp());
    const auto ops = gen.generate(10000);
    std::uint64_t prev = 0;
    int sequential = 0, mem = 0;
    for (const auto &op : ops) {
        if (!op.isMem())
            continue;
        if (mem > 0 && op.addr == prev + 8)
            ++sequential;
        prev = op.addr;
        ++mem;
    }
    EXPECT_GT(static_cast<double>(sequential) / mem, 0.9);
}

TEST(Generator, DepDistPointsToValidProducer)
{
    StreamGenerator gen(simpleApp());
    const auto ops = gen.generate(20000);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].depDist != kNoProducer) {
            ASSERT_LE(ops[i].depDist, i);
            EXPECT_EQ(static_cast<int>(ops[i].producerCls),
                      static_cast<int>(ops[i - ops[i].depDist].cls));
        }
    }
}

TEST(Generator, PcStaysInCodeFootprint)
{
    AppSpec app = simpleApp();
    app.phases[0].codeFootprintBytes = 4096;
    StreamGenerator gen(app);
    const auto ops = gen.generate(20000);
    for (const auto &op : ops) {
        EXPECT_GE(op.pc, 0x400000u);
        EXPECT_LT(op.pc, 0x400000u + 4096u);
    }
}

TEST(Generator, TakenRateTracksSpec)
{
    AppSpec app = simpleApp();
    app.phases[0].branchTakenRate = 0.8;
    app.phases[0].branchPredictability = 1.0;
    StreamGenerator gen(app);
    const auto ops = gen.generate(60000);
    std::size_t branches = 0, taken = 0;
    for (const auto &op : ops) {
        if (op.isBranch()) {
            ++branches;
            taken += op.taken;
        }
    }
    // Visitation bias (fall-through regions revisit not-taken sites
    // more often) pulls the realized rate below the per-site rate.
    EXPECT_NEAR(static_cast<double>(taken) / branches, 0.72, 0.12);
}

TEST(Generator, RejectsInvalidSpecs)
{
    AppSpec empty;
    empty.name = "empty";
    EXPECT_THROW(StreamGenerator{empty}, FatalError);

    AppSpec no_stream = simpleApp();
    no_stream.phases[0].streams.clear();
    EXPECT_THROW(StreamGenerator{no_stream}, FatalError);

    AppSpec bad_bb = simpleApp();
    bad_bb.phases[0].meanBasicBlock = 0.5;
    EXPECT_THROW(StreamGenerator{bad_bb}, FatalError);
}

TEST(Generator, MakeShardsSplitsEvenly)
{
    const auto shards = makeShards(simpleApp(), 1000, 7);
    ASSERT_EQ(shards.size(), 7u);
    for (const auto &s : shards)
        EXPECT_EQ(s.size(), 1000u);
}

TEST(Generator, MakeShardsMatchesContinuousStream)
{
    const auto shards = makeShards(simpleApp(), 500, 4);
    StreamGenerator gen(simpleApp());
    const auto ops = gen.generate(2000);
    for (std::size_t s = 0; s < 4; ++s) {
        for (std::size_t i = 0; i < 500; ++i) {
            EXPECT_EQ(shards[s][i].addr, ops[s * 500 + i].addr);
            EXPECT_EQ(shards[s][i].pc, ops[s * 500 + i].pc);
        }
    }
}

TEST(Generator, HotStreamSkewsAccesses)
{
    AppSpec app = simpleApp();
    MemStreamSpec hot;
    hot.kind = MemStreamSpec::Kind::Random;
    hot.workingSetBytes = 8 << 20;
    hot.hotBytes = 64 << 10;
    hot.hotFraction = 0.95;
    app.phases[0].streams = {hot};
    StreamGenerator gen(app);
    const auto ops = gen.generate(40000);
    std::size_t mem = 0, in_hot = 0;
    for (const auto &op : ops) {
        if (!op.isMem())
            continue;
        ++mem;
        in_hot += (op.addr & 0x3fffffffULL) < (64u << 10);
    }
    // Most accesses land in the hot subset.
    EXPECT_GT(static_cast<double>(in_hot) / mem, 0.5);
}

} // namespace
} // namespace hwsw::wl
