// Unit tests for basis learning and design-matrix construction.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"

#include "core/design.hpp"

namespace hwsw::core {
namespace {

/** A small synthetic dataset with two variables varying. */
Dataset
toyData(std::size_t n = 50)
{
    Dataset ds;
    Rng rng(13);
    for (std::size_t i = 0; i < n; ++i) {
        ProfileRecord r;
        r.app = "toy";
        r.vars[0] = rng.nextUniform(0.0, 1.0);
        r.vars[7] = std::exp(rng.nextGaussian() * 2.0 + 5.0); // long tail
        r.vars[kNumSw] = 1 << rng.nextInt(4); // width-like
        r.perf = 1.0 + r.vars[0];
        ds.add(r);
    }
    return ds;
}

TEST(GeneColumnCount, PerTransformation)
{
    EXPECT_EQ(geneColumnCount(GeneTx::Excluded), 0u);
    EXPECT_EQ(geneColumnCount(GeneTx::Linear), 1u);
    EXPECT_EQ(geneColumnCount(GeneTx::Quadratic), 2u);
    EXPECT_EQ(geneColumnCount(GeneTx::Cubic), 3u);
    EXPECT_EQ(geneColumnCount(GeneTx::Spline), 6u);
}

TEST(BasisTable, StabilizesLongTailedVariables)
{
    const BasisTable basis = computeBasisTable(toyData(400));
    // Variable 7 is log-normal with heavy tail: the ladder must pick
    // a non-identity transform (Figure 3(b)).
    EXPECT_NE(basis[7].stab.power(), stats::Power::Identity);
    EXPECT_LT(basis[7].lo, basis[7].hi);
    // Knots are increasing within the normalized scale.
    EXPECT_LT(basis[7].knots[0], basis[7].knots[1]);
    EXPECT_LT(basis[7].knots[1], basis[7].knots[2]);
}

TEST(BasisTable, DegenerateConstantVariable)
{
    // Variables never varying (most are zero in toyData) must still
    // produce a usable basis.
    const BasisTable basis = computeBasisTable(toyData(30));
    EXPECT_LT(basis[3].lo, basis[3].hi); // synthetic widening
}

TEST(DesignBuilder, ColumnCountMatchesSpec)
{
    const Dataset ds = toyData();
    ModelSpec spec;
    spec.genes[0] = 1; // linear: 1
    spec.genes[7] = 4; // spline: 6
    spec.genes[kNumSw] = 2; // quadratic: 2
    spec.interactions = {{0, 7}, {0, static_cast<std::uint16_t>(kNumSw)}};
    const DesignBuilder b(spec, ds);
    EXPECT_EQ(b.numColumns(), 1u + 1u + 6u + 2u + 2u);
    EXPECT_EQ(b.columnNames().size(), b.numColumns());
    EXPECT_EQ(b.columnNames()[0], "1");
}

TEST(DesignBuilder, BuildShape)
{
    const Dataset ds = toyData();
    ModelSpec spec;
    spec.genes[0] = 3;
    const DesignBuilder b(spec, ds);
    const stats::Matrix X = b.build(ds);
    EXPECT_EQ(X.rows(), ds.size());
    EXPECT_EQ(X.cols(), b.numColumns());
    // Intercept column is all ones.
    for (std::size_t r = 0; r < X.rows(); ++r)
        EXPECT_DOUBLE_EQ(X(r, 0), 1.0);
}

TEST(DesignBuilder, BaseValuesNormalizedOnTrainingRange)
{
    const Dataset ds = toyData(200);
    ModelSpec spec;
    spec.genes[0] = 1;
    const DesignBuilder b(spec, ds);
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const double u = b.baseValue(ds[i], 0);
        EXPECT_GE(u, -1e-12);
        EXPECT_LE(u, 1.0 + 1e-12);
    }
}

TEST(DesignBuilder, PolynomialColumnsArePowers)
{
    const Dataset ds = toyData();
    ModelSpec spec;
    spec.genes[0] = 3; // cubic
    const DesignBuilder b(spec, ds);
    std::vector<double> row(b.numColumns());
    b.fillRow(ds[5], row);
    const double u = b.baseValue(ds[5], 0);
    EXPECT_DOUBLE_EQ(row[1], u);
    EXPECT_DOUBLE_EQ(row[2], u * u);
    EXPECT_DOUBLE_EQ(row[3], u * u * u);
}

TEST(DesignBuilder, InteractionIsProductOfBaseValues)
{
    const Dataset ds = toyData();
    ModelSpec spec;
    spec.genes[0] = 1;
    spec.genes[7] = 1;
    spec.interactions = {{0, 7}};
    const DesignBuilder b(spec, ds);
    std::vector<double> row(b.numColumns());
    b.fillRow(ds[3], row);
    EXPECT_NEAR(row.back(),
                b.baseValue(ds[3], 0) * b.baseValue(ds[3], 7), 1e-12);
}

TEST(DesignBuilder, InteractionAllowedForExcludedVariable)
{
    // The chromosome encodes interactions independently of genes.
    const Dataset ds = toyData();
    ModelSpec spec;
    spec.genes[0] = 1;
    spec.interactions = {{5, 9}}; // neither var has a gene
    const DesignBuilder b(spec, ds);
    EXPECT_EQ(b.numColumns(), 1u + 1u + 1u);
}

TEST(DesignBuilder, SplineColumnsMatchKnots)
{
    const Dataset ds = toyData(300);
    ModelSpec spec;
    spec.genes[7] = 4;
    const DesignBuilder b(spec, ds);
    std::vector<double> row(b.numColumns());
    b.fillRow(ds[0], row);
    const double u = b.baseValue(ds[0], 7);
    EXPECT_DOUBLE_EQ(row[1], u);
    EXPECT_DOUBLE_EQ(row[2], u * u);
    EXPECT_DOUBLE_EQ(row[3], u * u * u);
    // Hinge terms are non-negative and zero when u below the knot.
    for (int k = 0; k < 3; ++k)
        EXPECT_GE(row[4 + k], 0.0);
}

TEST(DesignBuilder, FillRowSizeMismatchPanics)
{
    const Dataset ds = toyData();
    ModelSpec spec;
    spec.genes[0] = 1;
    const DesignBuilder b(spec, ds);
    std::vector<double> bad(b.numColumns() + 1);
    EXPECT_THROW(b.fillRow(ds[0], bad), PanicError);
}

TEST(DesignBuilder, EmptyTrainingIsFatal)
{
    Dataset empty;
    ModelSpec spec;
    spec.genes[0] = 1;
    EXPECT_THROW(DesignBuilder(spec, empty), FatalError);
}

} // namespace
} // namespace hwsw::core
