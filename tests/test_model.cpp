// Unit tests for HwSwModel fitting and prediction.
#include <gtest/gtest.h>

#include "common/assert.hpp"

#include <cmath>

#include "core/model.hpp"

namespace hwsw::core {
namespace {

/**
 * Synthetic ground truth with known structure: performance is a
 * smooth positive function of two variables and their interaction.
 */
Dataset
synthData(std::size_t n, std::uint64_t seed)
{
    Dataset ds;
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        ProfileRecord r;
        r.app = i % 2 ? "even" : "odd"; // two pseudo-apps
        r.vars[6] = rng.nextUniform(0.1, 0.6);       // x7 mem
        r.vars[kNumSw] = 1 << rng.nextInt(4);        // y1 width
        r.vars[kNumSw + 4] = 16 << rng.nextInt(4);   // y5 dcache
        r.perf = 0.5 + 2.0 * r.vars[6] +
            4.0 / r.vars[kNumSw] +
            20.0 * r.vars[6] / r.vars[kNumSw + 4];
        ds.add(r);
    }
    return ds;
}

ModelSpec
goodSpec()
{
    ModelSpec spec;
    spec.genes[6] = 2;
    spec.genes[kNumSw] = 3;
    spec.genes[kNumSw + 4] = 3;
    spec.interactions = {{6, static_cast<std::uint16_t>(kNumSw)},
                         {6, static_cast<std::uint16_t>(kNumSw + 4)}};
    spec.normalize();
    return spec;
}

TEST(HwSwModel, FitsSmoothGroundTruthAccurately)
{
    const Dataset train = synthData(300, 1);
    const Dataset val = synthData(60, 2);
    HwSwModel m;
    EXPECT_FALSE(m.fitted());
    m.fit(goodSpec(), train);
    EXPECT_TRUE(m.fitted());
    const auto metrics = m.validate(val);
    EXPECT_LT(metrics.medianAbsPctError, 0.05);
    EXPECT_GT(metrics.spearman, 0.97);
}

TEST(HwSwModel, PredictMatchesPredictAll)
{
    const Dataset train = synthData(200, 3);
    HwSwModel m;
    m.fit(goodSpec(), train);
    const auto all = m.predictAll(train);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_NEAR(all[i], m.predict(train[i]), 1e-9);
}

TEST(HwSwModel, LogResponseIsDefaultAndPositive)
{
    const Dataset train = synthData(200, 4);
    HwSwModel m;
    EXPECT_TRUE(m.logResponse());
    m.fit(goodSpec(), train);
    for (std::size_t i = 0; i < train.size(); ++i)
        EXPECT_GT(m.predict(train[i]), 0.0);
}

TEST(HwSwModel, LinearResponseOption)
{
    const Dataset train = synthData(300, 5);
    HwSwModel m;
    m.setLogResponse(false);
    m.fit(goodSpec(), train);
    const auto metrics = m.validate(synthData(50, 6));
    EXPECT_LT(metrics.medianAbsPctError, 0.08);
}

TEST(HwSwModel, WeightedFitFavorsWeightedApp)
{
    // Two apps with conflicting intercepts; weighting one app must
    // pull predictions toward it.
    Dataset train;
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        ProfileRecord r;
        r.app = i % 2 ? "hi" : "lo";
        r.vars[0] = rng.nextUniform(0, 1);
        r.perf = (i % 2) ? 4.0 : 1.0;
        train.add(r);
    }
    ModelSpec spec;
    spec.genes[0] = 1;

    std::vector<double> w(train.size(), 1.0);
    for (std::size_t i = 0; i < train.size(); ++i)
        if (train[i].app == "hi")
            w[i] = 50.0;
    HwSwModel weighted;
    weighted.fit(spec, train, w);
    HwSwModel plain;
    plain.fit(spec, train);
    EXPECT_GT(weighted.predict(train[1]), plain.predict(train[1]));
}

TEST(HwSwModel, ReportsCollinearColumns)
{
    // x1 and an interaction x1*x1 cannot both... use two identical
    // variables instead: vars 0 and 1 always equal.
    Dataset train;
    Rng rng(9);
    for (int i = 0; i < 80; ++i) {
        ProfileRecord r;
        r.app = "a";
        r.vars[0] = rng.nextUniform(0, 1);
        r.vars[1] = r.vars[0]; // perfectly collinear
        r.perf = 1.0 + r.vars[0];
        train.add(r);
    }
    ModelSpec spec;
    spec.genes[0] = 1;
    spec.genes[1] = 1;
    HwSwModel m;
    m.fit(spec, train);
    EXPECT_GE(m.numDroppedColumns(), 1u);
    // Predictions still fine despite the drop.
    EXPECT_LT(m.validate(train).medianAbsPctError, 0.01);
}

TEST(HwSwModel, SpecAccessorsRequireFit)
{
    HwSwModel m;
    EXPECT_THROW(m.spec(), PanicError);
    EXPECT_THROW(m.numColumns(), PanicError);
    ProfileRecord r;
    EXPECT_THROW(m.predict(r), PanicError);
}

TEST(HwSwModel, FitOnEmptyDatasetIsFatal)
{
    Dataset empty;
    HwSwModel m;
    EXPECT_THROW(m.fit(goodSpec(), empty), FatalError);
}

TEST(HwSwModel, ExtrapolatesTrendBeyondTrainingRange)
{
    // Train on widths 1..4, predict width 8: the monotone trend must
    // persist (prediction for width 8 below width 1's).
    Dataset train;
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        ProfileRecord r;
        r.app = "a";
        r.vars[kNumSw] = 1 << rng.nextInt(3); // 1, 2, 4
        r.vars[6] = rng.nextUniform(0.2, 0.5);
        r.perf = 1.0 + 4.0 / r.vars[kNumSw] + r.vars[6];
        train.add(r);
    }
    ModelSpec spec;
    spec.genes[kNumSw] = 2;
    spec.genes[6] = 1;
    HwSwModel m;
    m.fit(spec, train);

    ProfileRecord narrow, wide;
    narrow.vars[kNumSw] = 1;
    narrow.vars[6] = 0.3;
    wide.vars[kNumSw] = 8;
    wide.vars[6] = 0.3;
    EXPECT_GT(m.predict(narrow), m.predict(wide));
}

} // namespace
} // namespace hwsw::core
